"""Exact rational linear programming (primal simplex, Bland's rule).

Used by the polyhedra-lite domain for feasibility and entailment checks.
Problems are tiny (tens of variables and constraints) so an exact dense
tableau with :class:`fractions.Fraction` entries is both simple and fast
enough; Bland's anti-cycling rule guarantees termination.

The public entry points work directly on :class:`~repro.numeric.linexpr`
objects with *free* (sign-unrestricted) variables.
"""

from __future__ import annotations

import os
from fractions import Fraction
from math import gcd
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import kernels
from repro.numeric.linexpr import EQ, GE, Constraint, LinExpr

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"

# Fast float pre-pass (scipy HiGHS) for the boolean queries; decisions in
# the ambiguous band fall back to the exact rational simplex.  Set
# REPRO_EXACT_LP=1 to force exact arithmetic everywhere.
_EXACT_ONLY = os.environ.get("REPRO_EXACT_LP") == "1"
try:  # pragma: no cover - import guard
    from scipy.optimize import linprog as _linprog
except Exception:  # pragma: no cover
    _linprog = None
try:  # direct HiGHS bindings: ~10x less per-call overhead than linprog
    import numpy as _np
    from scipy.optimize._highspy import _core as _highs_core
except Exception:  # pragma: no cover
    _highs_core = None

_CLEAR = 1e-6  # |margin| above this: trust the float verdict
_TIGHT = 1e-9  # within this of zero: treat as exactly tight


class LPResult:
    """Outcome of an LP solve: a status and, if optimal, the value."""

    __slots__ = ("status", "value")

    def __init__(self, status: str, value: Optional[Fraction] = None):
        self.status = status
        self.value = value

    def __repr__(self) -> str:
        if self.status == OPTIMAL:
            return f"LPResult(optimal, {self.value})"
        return f"LPResult({self.status})"


def _pivot(tableau: List[List[Fraction]], basis: List[int], row: int, col: int) -> None:
    """Pivot the tableau on (row, col)."""
    pivot_row = tableau[row]
    inv = Fraction(1) / pivot_row[col]
    tableau[row] = [entry * inv for entry in pivot_row]
    pivot_row = tableau[row]
    for r, current in enumerate(tableau):
        if r == row:
            continue
        factor = current[col]
        if factor != 0:
            tableau[r] = [a - factor * b for a, b in zip(current, pivot_row)]
    basis[row] = col


def _simplex_phase(
    tableau: List[List[Fraction]],
    basis: List[int],
    cost: List[Fraction],
    allowed: Sequence[bool],
) -> str:
    """Minimize ``cost . x`` over the tableau in place.

    ``tableau`` rows are ``[a_1 .. a_n | b]`` with the basis columns forming
    an identity; ``allowed[j]`` masks columns eligible to enter (used to
    exclude artificial variables in phase 2).  Returns OPTIMAL or UNBOUNDED;
    the reduced-cost row is recomputed from scratch each iteration, which is
    O(m*n) but fine at our scale.
    """
    num_cols = len(tableau[0]) - 1
    while True:
        # Reduced costs: z_j - c_j where z_j = sum over basic rows.
        reduced = list(cost)
        offset = Fraction(0)
        for row, var in enumerate(basis):
            cb = cost[var]
            if cb != 0:
                row_data = tableau[row]
                offset += cb * row_data[-1]
                for j in range(num_cols):
                    reduced[j] -= cb * row_data[j]
        entering = -1
        for j in range(num_cols):  # Bland: smallest eligible index.
            if allowed[j] and reduced[j] < 0:
                entering = j
                break
        if entering < 0:
            return OPTIMAL
        leaving = -1
        best_ratio: Optional[Fraction] = None
        for r, row_data in enumerate(tableau):
            a = row_data[entering]
            if a > 0:
                ratio = row_data[-1] / a
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving < 0:
            return UNBOUNDED
        _pivot(tableau, basis, leaving, entering)


# Memo for exact solves: one AU transfer step can issue thousands of
# entailment checks whose ambiguous cases all fall back to the exact
# simplex, and the same canonical system recurs across join/widen/leq
# chains — the PR-2 fuzzing oracle measured single steps sinking minutes
# here.  Keyed on the *canonical* constraint system (order-independent
# frozenset of constraint keys) plus objective and sense; LPResult values
# are immutable, so sharing them is safe.
#
# Key-aliasing audit (see tests/test_kernels.py): a collision would need
# two semantically different inputs mapping to the same key.  That cannot
# happen because (a) ``Constraint.key()`` starts with the relation, so a
# GE and an EQ over the same expression never collide; (b) keys are built
# from ``normalized()`` forms — coprime integer coefficients with a sign
# convention applied only to equalities — so two keys are equal iff the
# constraints are positive multiples of each other, i.e. the same
# half-space/hyperplane; (c) duplicate constraints collapsing in the
# frozenset is harmless (conjunction is idempotent); (d) trivial
# constraints are filtered *before* keying in every caller, so presence
# or absence of ``0 >= 0`` cannot alias two systems; and (e) the
# objective's key includes its constant and the ``maximize`` sense is a
# separate key component.
_SOLVE_CACHE: dict = {}
_SOLVE_CACHE_MAX = 200_000
_SOLVE_STATS = {"hits": 0, "misses": 0}

# Warm-start snapshots of the fast integer simplex: for a constraint
# system already driven through phase 1, later queries over the same
# system (new objective) restart at phase 2, and queries that add one
# constraint re-enter phase 1 with a single artificial row instead of m.
_BASIS_CACHE: dict = {}
_BASIS_CACHE_MAX = 20_000
_BASIS_STATS = {"phase2_reuse": 0, "incremental_reuse": 0, "int_solves": 0,
                "int_fallbacks": 0}

# Integer tableau entries past this bit-length abort the fast solver in
# favour of the exact-Fraction reference ("overflow risk" for the fast
# path: Python ints cannot overflow, but unreduced blowup costs more
# than the reference would).
_INT_BLOWUP_BITS = 2048

# Up to this many constraints, fast-kernel mode answers boolean queries
# with the (memoized, warm-started) integer simplex directly: HiGHS
# model-build overhead dominates sub-millisecond problems, and the same
# small systems recur across entailment sweeps where the basis cache
# pays off.  Larger systems keep the float pre-pass.
_INT_DIRECT_MAX = 20


def cache_stats() -> dict:
    """Hit/miss counters of the exact-LP memo (cumulative per process);
    the engine reports per-run deltas in its ``stats()['lp_cache']``."""
    return {
        "solve_hits": _SOLVE_STATS["hits"],
        "solve_misses": _SOLVE_STATS["misses"],
        "solve_entries": len(_SOLVE_CACHE),
        "entails_entries": len(_ENTAILS_CACHE),
        "basis_phase2_reuse": _BASIS_STATS["phase2_reuse"],
        "basis_incremental_reuse": _BASIS_STATS["incremental_reuse"],
        "int_solves": _BASIS_STATS["int_solves"],
        "int_fallbacks": _BASIS_STATS["int_fallbacks"],
    }


def clear_caches() -> None:
    _SOLVE_CACHE.clear()
    _ENTAILS_CACHE.clear()
    _BASIS_CACHE.clear()
    _SOLVE_STATS["hits"] = _SOLVE_STATS["misses"] = 0
    for key in _BASIS_STATS:
        _BASIS_STATS[key] = 0


def solve_lp(
    constraints: Iterable[Constraint],
    objective: LinExpr,
    maximize: bool = False,
) -> LPResult:
    """Minimize (or maximize) ``objective`` subject to ``constraints``.

    Variables are free; internally every free variable ``x`` is split into
    ``x+ - x-`` with both parts non-negative, inequalities get slack
    variables, and a two-phase simplex with artificial variables decides
    feasibility and optimizes.  Results are memoized on the canonical
    constraint system (see ``_SOLVE_CACHE``).
    """
    cons = [c for c in constraints if not c.is_trivial()]
    for c in cons:
        if c.is_contradiction():
            return LPResult(INFEASIBLE)

    sys_key = frozenset(c.key() for c in cons)
    # The objective must be memoized EXACTLY, not via LinExpr.key():
    # key() normalizes scale away, so the objectives ``2*x`` and ``x``
    # (or the constants ``5`` and ``1``) would alias one cache slot and
    # return each other's optima.  Constraint keys may normalize (the
    # feasible set is scale-invariant); the objective value is not.
    memo_key = (sys_key, objective, maximize)
    cached = _SOLVE_CACHE.get(memo_key)
    if cached is not None:
        _SOLVE_STATS["hits"] += 1
        return cached
    _SOLVE_STATS["misses"] += 1
    result = None
    if kernels.FAST:
        result = _solve_lp_int(cons, objective, maximize, sys_key)
        if result is None:
            _BASIS_STATS["int_fallbacks"] += 1
    if result is None:
        result = _solve_lp_uncached(cons, objective, maximize)
    if len(_SOLVE_CACHE) > _SOLVE_CACHE_MAX:
        _SOLVE_CACHE.clear()
    _SOLVE_CACHE[memo_key] = result
    return result


def _solve_lp_uncached(
    cons: List[Constraint],
    objective: LinExpr,
    maximize: bool,
) -> LPResult:

    variables = sorted(set().union(*[c.support() for c in cons], objective.support()) or set())
    var_index = {v: i for i, v in enumerate(variables)}
    n_free = len(variables)

    rows: List[Tuple[List[Fraction], Fraction, str]] = []
    for c in cons:
        coeffs = [Fraction(0)] * n_free
        for var, k in c.expr.coeffs.items():
            # Coerce: coefficients may be plain ints, but the tableau must
            # stay Fraction-valued (the ratio test divides raw entries).
            coeffs[var_index[var]] = Fraction(k)
        # expr >= 0  <=>  sum coeffs*x >= -const
        rows.append((coeffs, Fraction(-c.expr.const), c.rel))

    n_slack = sum(1 for _, _, rel in rows if rel == GE)
    m = len(rows)
    # Columns: [x+ (n_free)] [x- (n_free)] [slacks (n_slack)] [artificials (m)]
    n_cols = 2 * n_free + n_slack + m
    tableau: List[List[Fraction]] = []
    basis: List[int] = []
    slack_i = 0
    for r, (coeffs, rhs, rel) in enumerate(rows):
        row = [Fraction(0)] * (n_cols + 1)
        sign = 1 if rhs >= 0 else -1
        for j, k in enumerate(coeffs):
            row[j] = sign * k
            row[n_free + j] = -sign * k
        if rel == GE:
            row[2 * n_free + slack_i] = Fraction(-sign)
            slack_i += 1
        art_col = 2 * n_free + n_slack + r
        row[art_col] = Fraction(1)
        row[-1] = abs(rhs)
        tableau.append(row)
        basis.append(art_col)

    if m == 0:
        # No constraints: objective unbounded unless constant.
        if objective.coeffs:
            return LPResult(UNBOUNDED)
        value = objective.const
        return LPResult(OPTIMAL, value)

    # Phase 1: minimize sum of artificials.
    phase1_cost = [Fraction(0)] * n_cols
    for j in range(2 * n_free + n_slack, n_cols):
        phase1_cost[j] = Fraction(1)
    allowed = [True] * n_cols
    status = _simplex_phase(tableau, basis, phase1_cost, allowed)
    assert status == OPTIMAL  # phase 1 is always bounded below by 0
    infeas = sum(tableau[r][-1] for r in range(m) if basis[r] >= 2 * n_free + n_slack)
    if infeas > 0:
        return LPResult(INFEASIBLE)
    # Drive artificials out of the basis when possible.
    for r in range(m):
        if basis[r] >= 2 * n_free + n_slack:
            for j in range(2 * n_free + n_slack):
                if tableau[r][j] != 0:
                    _pivot(tableau, basis, r, j)
                    break

    # Phase 2.
    sense = -1 if maximize else 1
    phase2_cost = [Fraction(0)] * n_cols
    for var, j in var_index.items():
        k = objective.coeffs.get(var, Fraction(0)) * sense
        phase2_cost[j] = k
        phase2_cost[n_free + j] = -k
    allowed = [j < 2 * n_free + n_slack for j in range(n_cols)]
    status = _simplex_phase(tableau, basis, phase2_cost, allowed)
    if status == UNBOUNDED:
        return LPResult(UNBOUNDED)

    value = objective.const
    assignment = [Fraction(0)] * n_cols
    for r, var in enumerate(basis):
        assignment[var] = tableau[r][-1]
    for var, j in var_index.items():
        k = objective.coeffs.get(var, Fraction(0))
        value += k * (assignment[j] - assignment[n_free + j])
    return LPResult(OPTIMAL, value)


# -- fast integer simplex ----------------------------------------------------
#
# The optimized twin of ``_solve_lp_uncached``: the same two-phase primal
# simplex over the same column layout, but with each tableau row held as
# integer numerators over one positive integer denominator.  A pivot is
# then pure integer arithmetic (one gcd pass per touched row instead of a
# gcd inside every Fraction operation), which measures several times
# faster at this scale.  The optimum of an LP is unique, so results are
# bit-identical to the reference path by construction; status flags are
# properties of the problem, not of the pivot order.
#
# On top of the raw solver sits a warm-start cache (``_BASIS_CACHE``):
# the post-phase-1 tableau of each solved constraint system is kept so
# that (a) a later query over the *same* system with a different
# objective runs phase 2 only, and (b) a query over the system plus
# exactly one new constraint re-enters phase 1 with a single appended
# row/artificial rather than re-solving all m rows from scratch.


def _row_gcd_reduce(nums, den):
    """Divide a row (numerators + positive denominator) by its gcd."""
    g = den
    for n in nums:
        if n:
            g = gcd(g, n)
            if g == 1:
                return nums, den
    if g > 1:
        return [n // g for n in nums], den // g
    return nums, den


def _pivot_int(rows, dens, basis, row, col):
    """Integer pivot on (row, col); mirrors ``_pivot`` over Fractions."""
    prow = rows[row]
    pn = prow[col]
    if pn < 0:  # normalize so the new basic column has positive value
        prow = [-x for x in prow]
        pn = -pn
    nums, den = _row_gcd_reduce(list(prow), pn)
    rows[row] = nums
    dens[row] = den
    for r in range(len(rows)):
        if r == row:
            continue
        factor = rows[r][col]
        if factor == 0:
            continue
        e = dens[r]
        rrow = rows[r]
        new = [m * den - factor * n for m, n in zip(rrow, nums)]
        new, nden = _row_gcd_reduce(new, e * den)
        rows[r] = new
        dens[r] = nden
    basis[row] = col


def _phase_int(rows, dens, basis, cost, allowed):
    """Minimize an integer cost vector in place; OPTIMAL/UNBOUNDED.

    Returns None when tableau denominators blow past the bit-length
    guard -- the caller falls back to the exact-Fraction reference.
    """
    num_cols = len(rows[0]) - 1
    m = len(rows)
    while True:
        # Reduced costs scaled by the lcm of the active basic-row
        # denominators (a positive factor: sign tests and Bland's
        # smallest-index choice are invariant under it).  Bland's rule
        # needs only the FIRST negative entry, so the scan is lazy per
        # column: near optimality (or when the entering column is early)
        # this skips most of the O(m*n) reduced-cost row.
        active = []
        scale = 1
        for r in range(m):
            cb = cost[basis[r]]
            if cb:
                d = dens[r]
                scale = scale * d // gcd(scale, d)
                active.append((r, cb))
        factors = [(cb * (scale // dens[r]), rows[r]) for r, cb in active]
        entering = -1
        for j in range(num_cols):  # Bland: smallest eligible index.
            if not allowed[j]:
                continue
            rj = cost[j] * scale
            for f, rrow in factors:
                a = rrow[j]
                if a:
                    rj -= f * a
            if rj < 0:
                entering = j
                break
        if entering < 0:
            return OPTIMAL
        leaving = -1
        best_num = best_den = 0  # ratio = rhs/a, compared cross-multiplied
        for r in range(m):
            a = rows[r][entering]
            if a > 0:
                rhs = rows[r][-1]
                if (
                    leaving < 0
                    or rhs * best_den < best_num * a
                    or (rhs * best_den == best_num * a
                        and basis[r] < basis[leaving])
                ):
                    best_num, best_den = rhs, a
                    leaving = r
        if leaving < 0:
            return UNBOUNDED
        _pivot_int(rows, dens, basis, leaving, entering)
        if max(dens).bit_length() > _INT_BLOWUP_BITS:
            return None


def _int_row(c, index, n_free, width):
    """One constraint as an integer x+/x- row: (row ints, rhs int)."""
    lcm = c.expr.const.denominator
    for k in c.expr.coeffs.values():
        d = k.denominator
        lcm = lcm * d // gcd(lcm, d)
    row = [0] * width
    for var, k in c.expr.coeffs.items():
        ik = int(k * lcm)
        j = index[var]
        row[j] = ik
        row[n_free + j] = -ik
    # expr >= 0  <=>  sum coeffs*x >= -const  (matches the reference)
    return row, -int(c.expr.const * lcm)


def _snapshot(rows, dens, basis, variables, art_cols):
    return (
        [list(r) for r in rows],
        list(dens),
        list(basis),
        variables,
        art_cols,
    )


def _store_basis(sys_key, rows, dens, basis, variables, art_cols):
    if len(_BASIS_CACHE) > _BASIS_CACHE_MAX:
        _BASIS_CACHE.clear()
    _BASIS_CACHE[sys_key] = _snapshot(
        rows, dens, basis, tuple(variables), frozenset(art_cols)
    )


_INFEASIBLE_MARK = object()


def _solve_lp_int(cons, objective, maximize, sys_key):
    """Fast-path exact solve; None means "fall back to the reference"."""
    _BASIS_STATS["int_solves"] += 1
    state = _BASIS_CACHE.get(sys_key)
    if state is not None:
        _BASIS_STATS["phase2_reuse"] += 1
        rows, dens, basis, variables, art_cols = _snapshot(*state)
        if not objective.support() <= set(variables):
            # Feasible system (phase 1 succeeded) with an objective term
            # it does not constrain: unbounded in that free direction.
            return LPResult(UNBOUNDED)
        return _phase2_int(rows, dens, basis, variables, art_cols,
                           objective, maximize)
    if len(cons) >= 2 and len(sys_key) == len(cons):
        grown = _try_incremental(cons, sys_key)
        if grown is _INFEASIBLE_MARK:
            return LPResult(INFEASIBLE)
        if grown is not None:
            rows, dens, basis, variables, art_cols = grown
            _store_basis(sys_key, rows, dens, basis, variables, art_cols)
            if not objective.support() <= set(variables):
                return LPResult(UNBOUNDED)
            return _phase2_int(rows, dens, basis, variables, art_cols,
                               objective, maximize)

    variables = tuple(sorted(
        set().union(*[c.support() for c in cons], objective.support())
        or set()
    ))
    n_free = len(variables)
    index = {v: i for i, v in enumerate(variables)}
    m = len(cons)
    if m == 0:
        if objective.coeffs:
            return LPResult(UNBOUNDED)
        return LPResult(OPTIMAL, objective.const)
    n_slack = sum(1 for c in cons if c.rel == GE)
    art_lo = 2 * n_free + n_slack
    # A GE row ``row.x - s = rhs`` with rhs <= 0 can be negated to seat
    # its slack directly in the starting basis (``-row.x + s = -rhs``),
    # so only EQ rows and GE rows with rhs > 0 need an artificial --
    # phase 1 then starts with a much smaller infeasibility objective.
    raw = []
    n_art = 0
    for c in cons:
        row, rhs = _int_row(c, index, n_free, art_lo + 1)
        needs_art = c.rel == EQ or rhs > 0
        raw.append((c, row, rhs, needs_art))
        if needs_art:
            n_art += 1
    n_cols = art_lo + n_art
    rows, dens, basis = [], [], []
    slack_i = 0
    art_i = 0
    for c, row, rhs, needs_art in raw:
        row = row[:-1] + [0] * n_art + [0]
        if needs_art:
            if rhs < 0:  # only EQ rows land here; normalize the sign
                row = [-x for x in row]
                rhs = -rhs
            elif c.rel == GE:  # rhs > 0: slack enters with -1, not basic
                row[2 * n_free + slack_i] = -1
                slack_i += 1
            row[art_lo + art_i] = 1
            basis.append(art_lo + art_i)
            art_i += 1
        else:  # GE with rhs <= 0: negate, slack is basic
            row = [-x for x in row]
            rhs = -rhs
            row[2 * n_free + slack_i] = 1
            basis.append(2 * n_free + slack_i)
            slack_i += 1
        row[-1] = rhs
        rows.append(row)
        dens.append(1)

    art_cols = frozenset(range(art_lo, n_cols))
    if n_art:
        phase1_cost = [0] * n_cols
        for j in range(art_lo, n_cols):
            phase1_cost[j] = 1
        status = _phase_int(rows, dens, basis, phase1_cost, [True] * n_cols)
        if status is None:
            return None
        assert status == OPTIMAL  # bounded below by 0
        if any(rows[r][-1] for r in range(m) if basis[r] in art_cols):
            return LPResult(INFEASIBLE)
    _drive_out_artificials(rows, dens, basis, art_cols)
    _store_basis(sys_key, rows, dens, basis, variables, art_cols)
    return _phase2_int(rows, dens, basis, variables, art_cols,
                       objective, maximize)


def _drive_out_artificials(rows, dens, basis, art_cols):
    for r in range(len(rows)):
        if basis[r] in art_cols:
            for j in range(len(rows[0]) - 1):
                if j not in art_cols and rows[r][j]:
                    _pivot_int(rows, dens, basis, r, j)
                    break


def _try_incremental(cons, sys_key):
    """Warm-start from a cached basis of ``cons`` minus one constraint.

    Returns a grown working tableau, ``_INFEASIBLE_MARK`` when the added
    constraint contradicts the cached system, or None when no one-smaller
    system is cached (or the warm start cannot apply).
    """
    for added in cons:
        smaller = sys_key - {added.key()}
        if len(smaller) != len(sys_key) - 1:
            continue  # duplicate keys; ambiguous removal
        state = _BASIS_CACHE.get(smaller)
        if state is None:
            continue
        rows, dens, basis, variables, art_cols = _snapshot(*state)
        if not added.support() <= set(variables):
            continue  # new columns needed; fall back to a fresh solve
        grown = _append_row(rows, dens, basis, variables, art_cols, added)
        if grown is _INFEASIBLE_MARK:
            return _INFEASIBLE_MARK
        if grown is not None:
            _BASIS_STATS["incremental_reuse"] += 1
            return grown
    return None


def _append_row(rows, dens, basis, variables, art_cols, added):
    """Add one constraint row to a phase-1-complete tableau.

    The row enters with its own slack column (GE); if the current vertex
    already satisfies the constraint the slack is basic and no pivoting
    happens, otherwise one artificial column and a one-row phase 1
    restore feasibility.
    """
    n_free = len(variables)
    index = {v: i for i, v in enumerate(variables)}
    old_cols = len(rows[0]) - 1
    raw, rhs = _int_row(added, index, n_free, old_cols)
    # Layout: [old columns][slack][artificial][rhs]
    slack_col = old_cols
    art_col = old_cols + 1
    new = raw + [0, 0, rhs]
    if added.rel == GE:
        new[slack_col] = -1
    den = 1
    # Reduce against the basis so basic columns read zero; each basic
    # column lives in exactly one row, so one pass suffices.
    for r in range(len(rows)):
        factor = new[basis[r]]
        if factor == 0:
            continue
        rrow = rows[r]
        rden = dens[r]
        merged = [
            a * rden - factor * b
            for a, b in zip(new[:old_cols], rrow[:old_cols])
        ]
        new = merged + [
            new[slack_col] * rden,
            new[art_col] * rden,
            new[-1] * rden - factor * rrow[-1],
        ]
        den *= rden
    new, den = _row_gcd_reduce(new, den)
    if not any(new[j] for j in range(len(new) - 1)):
        if new[-1] != 0:
            return _INFEASIBLE_MARK
        return None  # redundant row: adding nothing; use a fresh solve
    grown_rows = [r[:old_cols] + [0, 0, r[-1]] for r in rows]
    grown_dens = list(dens)
    grown_basis = list(basis)
    if added.rel == GE and new[-1] <= 0:
        # Vertex satisfies the constraint: slack value -rhs/den >= 0.
        # Flip so the slack coefficient is positive, then normalize its
        # value to exactly 1 by taking it as the row denominator.
        flipped = [-x for x in new]
        k = flipped[slack_col]
        assert k > 0
        flipped, fden = _row_gcd_reduce(flipped, k)
        grown_rows.append(flipped)
        grown_dens.append(fden)
        grown_basis.append(slack_col)
        return (grown_rows, grown_dens, grown_basis, variables, art_cols)
    # General case: flip for a non-negative rhs, seat an artificial.
    if new[-1] < 0:
        new = [-x for x in new]
    new[art_col] = den  # artificial value exactly 1
    grown_rows.append(new)
    grown_dens.append(den)
    grown_basis.append(art_col)
    new_art_cols = frozenset(art_cols) | {art_col}
    n_cols = len(grown_rows[0]) - 1
    cost = [0] * n_cols
    cost[art_col] = 1
    allowed = [j not in new_art_cols for j in range(n_cols)]
    status = _phase_int(grown_rows, grown_dens, grown_basis, cost, allowed)
    if status is None or status == UNBOUNDED:
        return None  # blowup (or impossible unbounded phase 1): fresh solve
    for r in range(len(grown_rows)):
        if grown_basis[r] == art_col and grown_rows[r][-1]:
            return _INFEASIBLE_MARK
    _drive_out_artificials(grown_rows, grown_dens, grown_basis, {art_col})
    return (grown_rows, grown_dens, grown_basis, variables, new_art_cols)


def _phase2_int(rows, dens, basis, variables, art_cols, objective, maximize):
    """Phase 2 from a feasible basis; exact optimum as an LPResult."""
    n_free = len(variables)
    var_index = {v: i for i, v in enumerate(variables)}
    n_cols = len(rows[0]) - 1
    sense = -1 if maximize else 1
    # Scale the objective to integers (a positive factor: pivot choices
    # and optimality tests are invariant; the value is recomputed exactly
    # from the final assignment below).
    lcm = 1
    for k in objective.coeffs.values():
        d = k.denominator
        lcm = lcm * d // gcd(lcm, d)
    cost = [0] * n_cols
    for var, j in var_index.items():
        k = objective.coeffs.get(var)
        if k:
            ik = int(k * lcm) * sense
            cost[j] = ik
            cost[n_free + j] = -ik
    allowed = [j not in art_cols for j in range(n_cols)]
    status = _phase_int(rows, dens, basis, cost, allowed)
    if status is None:
        return None
    if status == UNBOUNDED:
        return LPResult(UNBOUNDED)
    value = objective.const
    assignment = {}
    for r, var in enumerate(basis):
        if rows[r][-1]:
            assignment[var] = Fraction(rows[r][-1], dens[r])
    zero = Fraction(0)
    for var, j in var_index.items():
        k = objective.coeffs.get(var)
        if k:
            value += k * (
                assignment.get(j, zero) - assignment.get(n_free + j, zero)
            )
    return LPResult(OPTIMAL, value)


def _float_lp(
    constraints: Sequence[Constraint], objective: LinExpr, maximize: bool
) -> Optional[Tuple[str, float]]:
    """Solve with HiGHS; None when scipy is unavailable or the solve fails."""
    if _EXACT_ONLY:
        return None
    if _highs_core is not None:
        result = _float_lp_direct(constraints, objective, maximize)
        if result is not None:
            return result
    if _linprog is None:
        return None
    variables = sorted(
        set().union(set(), *[c.support() for c in constraints], objective.support())
    )
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for c in constraints:
        row = [0.0] * n
        for var, k in c.expr.coeffs.items():
            row[index[var]] = float(k)
        if c.rel == GE:  # coeffs.x + const >= 0  ->  -coeffs.x <= const
            a_ub.append([-x for x in row])
            b_ub.append(float(c.expr.const))
        else:
            a_eq.append(row)
            b_eq.append(-float(c.expr.const))
    cvec = [0.0] * n
    sense = -1.0 if maximize else 1.0
    for var, k in objective.coeffs.items():
        cvec[index[var]] = sense * float(k)
    try:
        res = _linprog(
            cvec,
            A_ub=a_ub or None,
            b_ub=b_ub or None,
            A_eq=a_eq or None,
            b_eq=b_eq or None,
            bounds=[(None, None)] * n,
            method="highs",
        )
    except Exception:  # pragma: no cover - solver hiccup
        return None
    if res.status == 2:
        return (INFEASIBLE, 0.0)
    if res.status == 3:
        return (UNBOUNDED, 0.0)
    if res.status != 0:  # pragma: no cover - iteration/numeric trouble
        return None
    value = sense * res.fun + float(objective.const)
    return (OPTIMAL, value)


def _float_lp_direct(
    constraints: Sequence[Constraint], objective: LinExpr, maximize: bool
) -> Optional[Tuple[str, float]]:
    """Minimal-overhead path through scipy's bundled HiGHS bindings."""
    core = _highs_core
    variables = sorted(
        set().union(set(), *[c.support() for c in constraints], objective.support())
    )
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    if n == 0:
        for c in constraints:
            if c.is_contradiction():
                return (INFEASIBLE, 0.0)
        return (OPTIMAL, float(objective.const))
    inf = core.kHighsInf
    starts = [0]
    idx: List[int] = []
    vals: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    for c in constraints:
        row, const = c.float_row()
        for var, k in row:
            idx.append(index[var])
            vals.append(k)
        starts.append(len(idx))
        lower.append(-const)
        upper.append(-const if c.rel == EQ else inf)
    sense = -1.0 if maximize else 1.0
    cost = [0.0] * n
    for var, k in objective.coeffs.items():
        cost[index[var]] = sense * float(k)
    try:
        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = len(constraints)
        lp.col_cost_ = _np.asarray(cost, dtype=float)
        lp.col_lower_ = _np.full(n, -inf)
        lp.col_upper_ = _np.full(n, inf)
        lp.row_lower_ = _np.asarray(lower, dtype=float)
        lp.row_upper_ = _np.asarray(upper, dtype=float)
        lp.a_matrix_.format_ = core.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = _np.asarray(starts, dtype=_np.int32)
        lp.a_matrix_.index_ = _np.asarray(idx, dtype=_np.int32)
        lp.a_matrix_.value_ = _np.asarray(vals, dtype=float)
        solver = core._Highs()
        solver.setOptionValue("output_flag", False)
        solver.passModel(lp)
        solver.run()
        status = solver.getModelStatus()
    except Exception:  # pragma: no cover - fall back to linprog
        return None
    if status == core.HighsModelStatus.kInfeasible:
        return (INFEASIBLE, 0.0)
    if status == core.HighsModelStatus.kUnbounded:
        return (UNBOUNDED, 0.0)
    if status == core.HighsModelStatus.kUnboundedOrInfeasible:
        return None  # let the slower paths disambiguate
    if status != core.HighsModelStatus.kOptimal:  # pragma: no cover
        return None
    value = sense * solver.getInfo().objective_function_value + float(
        objective.const
    )
    return (OPTIMAL, value)


def is_feasible(constraints: Iterable[Constraint]) -> bool:
    """Rational feasibility of a constraint conjunction."""
    cons = list(constraints)
    if kernels.FAST and len(cons) <= _INT_DIRECT_MAX:
        return solve_lp(cons, LinExpr()).status != INFEASIBLE
    fast = _float_lp(cons, LinExpr(), False)
    if fast is not None:
        return fast[0] != INFEASIBLE
    return solve_lp(cons, LinExpr()).status != INFEASIBLE


def _connected_subset(
    constraints: Sequence[Constraint], seeds: frozenset
) -> List[Constraint]:
    """Constraints in the variable-connectivity component of ``seeds``.

    If the remaining constraints are feasible, entailment of a candidate
    over ``seeds`` is unaffected by dropping them (disjoint variables), so
    the LP can run on a much smaller tableau.
    """
    reached = set(seeds)
    remaining = list(constraints)
    picked: List[Constraint] = []
    changed = True
    while changed:
        changed = False
        rest = []
        for c in remaining:
            support = c.support()
            if support & reached:
                reached |= support
                picked.append(c)
                changed = True
            else:
                rest.append(c)
        remaining = rest
    return picked


_ENTAILS_CACHE: dict = {}
_ENTAILS_CACHE_MAX = 400_000


def entails(
    constraints: Sequence[Constraint],
    candidate: Constraint,
    assume_feasible: bool = False,
) -> bool:
    """Sound and complete (over the rationals) entailment check.

    ``constraints |= candidate`` iff the system is infeasible or the
    candidate expression's minimum over the feasible region is >= 0 (and,
    for equalities, the maximum is <= 0 too).

    With ``assume_feasible`` the check may restrict itself to the
    constraints sharing variables (transitively) with the candidate, which
    is exact when the rest of the system is feasible.
    """
    if candidate.is_trivial():
        return True
    cand_key = candidate.key()
    # Syntactic fast path: the candidate (or an equality covering it)
    # already appears in the system.
    for c in constraints:
        if c.key() == cand_key:
            return True
    if assume_feasible:
        constraints = _connected_subset(constraints, candidate.support())
        if not constraints:
            return False  # feasible system, unconstrained direction
    sys_key = (frozenset(c.key() for c in constraints), cand_key)
    cached = _ENTAILS_CACHE.get(sys_key)
    if cached is not None:
        return cached
    answer = _min_nonnegative(constraints, candidate.expr)
    if answer and candidate.rel == EQ:
        answer = _min_nonnegative(constraints, candidate.expr.scale(-1))
    if len(_ENTAILS_CACHE) > _ENTAILS_CACHE_MAX:
        _ENTAILS_CACHE.clear()
    _ENTAILS_CACHE[sys_key] = answer
    return answer


def _min_nonnegative(constraints: Sequence[Constraint], expr: LinExpr) -> bool:
    """Is ``min expr >= 0`` over the constraints (True if infeasible)?

    Uses the float LP when its verdict has a clear margin; ambiguous
    results fall back to the exact simplex.  Small systems in fast-kernel
    mode skip the float pass entirely: the exact integer simplex (with
    its memo and warm-start caches) beats the HiGHS per-call overhead
    there, and its verdicts need no margin handling.
    """
    if kernels.FAST and len(constraints) <= _INT_DIRECT_MAX:
        result = solve_lp(constraints, expr, maximize=False)
        if result.status == INFEASIBLE:
            return True
        if result.status == UNBOUNDED:
            return False
        return result.value >= 0
    fast = _float_lp(constraints, expr, maximize=False)
    if fast is not None:
        status, value = fast
        if status == INFEASIBLE:
            return True
        if status == UNBOUNDED:
            return False
        if value >= -_TIGHT:
            return True
        if value < -_CLEAR:
            return False
    result = solve_lp(constraints, expr, maximize=False)
    if result.status == INFEASIBLE:
        return True
    if result.status == UNBOUNDED:
        return False
    return result.value >= 0


def minimize_constraints(
    cons: Sequence[Constraint],
) -> Optional[List[Constraint]]:
    """Batch redundancy elimination over one shared float-LP model.

    Fast-kernel twin of the reference loop in ``Polyhedron.minimized()``:
    for each constraint, entailment from the remaining system is tested
    by deactivating its row (bounds to +-inf) and minimizing its
    expression over ONE HiGHS model that is modified and warm-started
    between queries -- large sweeps pay the model build once instead of
    per check.  Dropped rows stay deactivated, so query ``i`` sees
    exactly ``kept + cons[i+1:]``, the reference's ``rest``.

    Clear-margin float verdicts decide directly (same ``_CLEAR`` /
    ``_TIGHT`` policy as ``_min_nonnegative``); ambiguous ones delegate
    to :func:`entails` on the reference path.  Returns the kept list, or
    None when the shared model cannot be built or misbehaves -- the
    caller then runs the reference loop.
    """
    if _highs_core is None or _EXACT_ONLY:
        return None
    core = _highs_core
    variables = sorted(set().union(set(), *[c.support() for c in cons]))
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    if n == 0:
        return None
    inf = core.kHighsInf
    starts = [0]
    idx: List[int] = []
    vals: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    for c in cons:
        row, const = c.float_row()
        for var, k in row:
            idx.append(index[var])
            vals.append(k)
        starts.append(len(idx))
        lower.append(-const)
        upper.append(-const if c.rel == EQ else inf)
    try:
        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = len(cons)
        lp.col_cost_ = _np.zeros(n)
        lp.col_lower_ = _np.full(n, -inf)
        lp.col_upper_ = _np.full(n, inf)
        lp.row_lower_ = _np.asarray(lower, dtype=float)
        lp.row_upper_ = _np.asarray(upper, dtype=float)
        lp.a_matrix_.format_ = core.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = _np.asarray(starts, dtype=_np.int32)
        lp.a_matrix_.index_ = _np.asarray(idx, dtype=_np.int32)
        lp.a_matrix_.value_ = _np.asarray(vals, dtype=float)
        solver = core._Highs()
        solver.setOptionValue("output_flag", False)
        solver.passModel(lp)
        # One zero-objective probe: an infeasible system needs the
        # reference path (its component-restricted entailment can answer
        # differently than the whole-system LP would).
        solver.run()
        if solver.getModelStatus() != core.HighsModelStatus.kOptimal:
            return None
    except Exception:  # pragma: no cover - solver hiccup
        return None

    obj_cols: List[int] = []

    def float_min(coeffs, const) -> Optional[Tuple[str, float]]:
        try:
            for j in obj_cols:
                solver.changeColCost(j, 0.0)
            obj_cols.clear()
            for var, k in coeffs.items():
                j = index[var]
                solver.changeColCost(j, float(k))
                obj_cols.append(j)
            solver.run()
            status = solver.getModelStatus()
            if status == core.HighsModelStatus.kInfeasible:
                return (INFEASIBLE, 0.0)
            if status == core.HighsModelStatus.kUnbounded:
                return (UNBOUNDED, 0.0)
            if status != core.HighsModelStatus.kOptimal:
                return None
            value = solver.getInfo().objective_function_value + float(const)
            return (OPTIMAL, value)
        except Exception:  # pragma: no cover - solver hiccup
            return None

    def margin_verdict(result) -> Optional[bool]:
        if result is None:
            return None
        status, value = result
        if status == INFEASIBLE:
            return True
        if status == UNBOUNDED:
            return False
        if value >= -_TIGHT:
            return True
        if value < -_CLEAR:
            return False
        return None

    kept: List[Constraint] = []
    cons = list(cons)
    for i, c in enumerate(cons):
        try:
            solver.changeRowBounds(i, -inf, inf)
        except Exception:  # pragma: no cover
            return None
        verdict = margin_verdict(float_min(c.expr.coeffs, c.expr.const))
        if verdict is True and c.rel == EQ:
            neg = c.expr.scale(-1)
            verdict = margin_verdict(float_min(neg.coeffs, neg.const))
        if verdict is None:  # ambiguous: decide exactly as the reference
            verdict = entails(kept + cons[i + 1:], c, assume_feasible=True)
        if not verdict:
            kept.append(c)
            try:
                solver.changeRowBounds(i, lower[i], upper[i])
            except Exception:  # pragma: no cover
                return None
    return kept


def sample_point(constraints: Sequence[Constraint]) -> Optional[dict]:
    """Return a rational point satisfying the constraints, or None.

    Used by tests as a witness generator.
    """
    cons = [c for c in constraints if not c.is_trivial()]
    for c in cons:
        if c.is_contradiction():
            return None
    variables = sorted(set().union(set(), *[c.support() for c in cons]))
    if not variables:
        return {}
    # Minimize 0 to run phase 1, then read off basic values.
    result = solve_lp(cons, LinExpr())
    if result.status == INFEASIBLE:
        return None
    # Re-run internally to extract a point: minimize each variable summed,
    # bounded check avoided by minimizing 0 and extracting from tableau is
    # not exposed; instead minimize nothing and probe coordinates greedily.
    point = {}
    fixed: List[Constraint] = list(cons)
    for var in variables:
        lo = solve_lp(fixed, LinExpr.var(var), maximize=False)
        if lo.status == OPTIMAL:
            value = lo.value
        else:
            hi = solve_lp(fixed, LinExpr.var(var), maximize=True)
            value = hi.value if hi.status == OPTIMAL else Fraction(0)
        point[var] = value
        fixed.append(Constraint.eq(LinExpr.var(var), LinExpr.const_expr(value)))
    return point
