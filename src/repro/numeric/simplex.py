"""Exact rational linear programming (primal simplex, Bland's rule).

Used by the polyhedra-lite domain for feasibility and entailment checks.
Problems are tiny (tens of variables and constraints) so an exact dense
tableau with :class:`fractions.Fraction` entries is both simple and fast
enough; Bland's anti-cycling rule guarantees termination.

The public entry points work directly on :class:`~repro.numeric.linexpr`
objects with *free* (sign-unrestricted) variables.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.numeric.linexpr import EQ, GE, Constraint, LinExpr

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"

# Fast float pre-pass (scipy HiGHS) for the boolean queries; decisions in
# the ambiguous band fall back to the exact rational simplex.  Set
# REPRO_EXACT_LP=1 to force exact arithmetic everywhere.
_EXACT_ONLY = os.environ.get("REPRO_EXACT_LP") == "1"
try:  # pragma: no cover - import guard
    from scipy.optimize import linprog as _linprog
except Exception:  # pragma: no cover
    _linprog = None
try:  # direct HiGHS bindings: ~10x less per-call overhead than linprog
    import numpy as _np
    from scipy.optimize._highspy import _core as _highs_core
except Exception:  # pragma: no cover
    _highs_core = None

_CLEAR = 1e-6  # |margin| above this: trust the float verdict
_TIGHT = 1e-9  # within this of zero: treat as exactly tight


class LPResult:
    """Outcome of an LP solve: a status and, if optimal, the value."""

    __slots__ = ("status", "value")

    def __init__(self, status: str, value: Optional[Fraction] = None):
        self.status = status
        self.value = value

    def __repr__(self) -> str:
        if self.status == OPTIMAL:
            return f"LPResult(optimal, {self.value})"
        return f"LPResult({self.status})"


def _pivot(tableau: List[List[Fraction]], basis: List[int], row: int, col: int) -> None:
    """Pivot the tableau on (row, col)."""
    pivot_row = tableau[row]
    inv = Fraction(1) / pivot_row[col]
    tableau[row] = [entry * inv for entry in pivot_row]
    pivot_row = tableau[row]
    for r, current in enumerate(tableau):
        if r == row:
            continue
        factor = current[col]
        if factor != 0:
            tableau[r] = [a - factor * b for a, b in zip(current, pivot_row)]
    basis[row] = col


def _simplex_phase(
    tableau: List[List[Fraction]],
    basis: List[int],
    cost: List[Fraction],
    allowed: Sequence[bool],
) -> str:
    """Minimize ``cost . x`` over the tableau in place.

    ``tableau`` rows are ``[a_1 .. a_n | b]`` with the basis columns forming
    an identity; ``allowed[j]`` masks columns eligible to enter (used to
    exclude artificial variables in phase 2).  Returns OPTIMAL or UNBOUNDED;
    the reduced-cost row is recomputed from scratch each iteration, which is
    O(m*n) but fine at our scale.
    """
    num_cols = len(tableau[0]) - 1
    while True:
        # Reduced costs: z_j - c_j where z_j = sum over basic rows.
        reduced = list(cost)
        offset = Fraction(0)
        for row, var in enumerate(basis):
            cb = cost[var]
            if cb != 0:
                row_data = tableau[row]
                offset += cb * row_data[-1]
                for j in range(num_cols):
                    reduced[j] -= cb * row_data[j]
        entering = -1
        for j in range(num_cols):  # Bland: smallest eligible index.
            if allowed[j] and reduced[j] < 0:
                entering = j
                break
        if entering < 0:
            return OPTIMAL
        leaving = -1
        best_ratio: Optional[Fraction] = None
        for r, row_data in enumerate(tableau):
            a = row_data[entering]
            if a > 0:
                ratio = row_data[-1] / a
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving < 0:
            return UNBOUNDED
        _pivot(tableau, basis, leaving, entering)


# Memo for exact solves: one AU transfer step can issue thousands of
# entailment checks whose ambiguous cases all fall back to the exact
# simplex, and the same canonical system recurs across join/widen/leq
# chains — the PR-2 fuzzing oracle measured single steps sinking minutes
# here.  Keyed on the *canonical* constraint system (order-independent
# frozenset of constraint keys) plus objective and sense; LPResult values
# are immutable, so sharing them is safe.
_SOLVE_CACHE: dict = {}
_SOLVE_CACHE_MAX = 200_000
_SOLVE_STATS = {"hits": 0, "misses": 0}


def cache_stats() -> dict:
    """Hit/miss counters of the exact-LP memo (cumulative per process);
    the engine reports per-run deltas in its ``stats()['lp_cache']``."""
    return {
        "solve_hits": _SOLVE_STATS["hits"],
        "solve_misses": _SOLVE_STATS["misses"],
        "solve_entries": len(_SOLVE_CACHE),
        "entails_entries": len(_ENTAILS_CACHE),
    }


def clear_caches() -> None:
    _SOLVE_CACHE.clear()
    _ENTAILS_CACHE.clear()
    _SOLVE_STATS["hits"] = _SOLVE_STATS["misses"] = 0


def solve_lp(
    constraints: Iterable[Constraint],
    objective: LinExpr,
    maximize: bool = False,
) -> LPResult:
    """Minimize (or maximize) ``objective`` subject to ``constraints``.

    Variables are free; internally every free variable ``x`` is split into
    ``x+ - x-`` with both parts non-negative, inequalities get slack
    variables, and a two-phase simplex with artificial variables decides
    feasibility and optimizes.  Results are memoized on the canonical
    constraint system (see ``_SOLVE_CACHE``).
    """
    cons = [c for c in constraints if not c.is_trivial()]
    for c in cons:
        if c.is_contradiction():
            return LPResult(INFEASIBLE)

    memo_key = (
        frozenset(c.key() for c in cons),
        objective.key(),
        maximize,
    )
    cached = _SOLVE_CACHE.get(memo_key)
    if cached is not None:
        _SOLVE_STATS["hits"] += 1
        return cached
    _SOLVE_STATS["misses"] += 1
    result = _solve_lp_uncached(cons, objective, maximize)
    if len(_SOLVE_CACHE) > _SOLVE_CACHE_MAX:
        _SOLVE_CACHE.clear()
    _SOLVE_CACHE[memo_key] = result
    return result


def _solve_lp_uncached(
    cons: List[Constraint],
    objective: LinExpr,
    maximize: bool,
) -> LPResult:

    variables = sorted(set().union(*[c.support() for c in cons], objective.support()) or set())
    var_index = {v: i for i, v in enumerate(variables)}
    n_free = len(variables)

    rows: List[Tuple[List[Fraction], Fraction, str]] = []
    for c in cons:
        coeffs = [Fraction(0)] * n_free
        for var, k in c.expr.coeffs.items():
            coeffs[var_index[var]] = k
        # expr >= 0  <=>  sum coeffs*x >= -const
        rows.append((coeffs, -c.expr.const, c.rel))

    n_slack = sum(1 for _, _, rel in rows if rel == GE)
    m = len(rows)
    # Columns: [x+ (n_free)] [x- (n_free)] [slacks (n_slack)] [artificials (m)]
    n_cols = 2 * n_free + n_slack + m
    tableau: List[List[Fraction]] = []
    basis: List[int] = []
    slack_i = 0
    for r, (coeffs, rhs, rel) in enumerate(rows):
        row = [Fraction(0)] * (n_cols + 1)
        sign = 1 if rhs >= 0 else -1
        for j, k in enumerate(coeffs):
            row[j] = sign * k
            row[n_free + j] = -sign * k
        if rel == GE:
            row[2 * n_free + slack_i] = Fraction(-sign)
            slack_i += 1
        art_col = 2 * n_free + n_slack + r
        row[art_col] = Fraction(1)
        row[-1] = abs(rhs)
        tableau.append(row)
        basis.append(art_col)

    if m == 0:
        # No constraints: objective unbounded unless constant.
        if objective.coeffs:
            return LPResult(UNBOUNDED)
        value = objective.const
        return LPResult(OPTIMAL, value)

    # Phase 1: minimize sum of artificials.
    phase1_cost = [Fraction(0)] * n_cols
    for j in range(2 * n_free + n_slack, n_cols):
        phase1_cost[j] = Fraction(1)
    allowed = [True] * n_cols
    status = _simplex_phase(tableau, basis, phase1_cost, allowed)
    assert status == OPTIMAL  # phase 1 is always bounded below by 0
    infeas = sum(tableau[r][-1] for r in range(m) if basis[r] >= 2 * n_free + n_slack)
    if infeas > 0:
        return LPResult(INFEASIBLE)
    # Drive artificials out of the basis when possible.
    for r in range(m):
        if basis[r] >= 2 * n_free + n_slack:
            for j in range(2 * n_free + n_slack):
                if tableau[r][j] != 0:
                    _pivot(tableau, basis, r, j)
                    break

    # Phase 2.
    sense = -1 if maximize else 1
    phase2_cost = [Fraction(0)] * n_cols
    for var, j in var_index.items():
        k = objective.coeffs.get(var, Fraction(0)) * sense
        phase2_cost[j] = k
        phase2_cost[n_free + j] = -k
    allowed = [j < 2 * n_free + n_slack for j in range(n_cols)]
    status = _simplex_phase(tableau, basis, phase2_cost, allowed)
    if status == UNBOUNDED:
        return LPResult(UNBOUNDED)

    value = objective.const
    assignment = [Fraction(0)] * n_cols
    for r, var in enumerate(basis):
        assignment[var] = tableau[r][-1]
    for var, j in var_index.items():
        k = objective.coeffs.get(var, Fraction(0))
        value += k * (assignment[j] - assignment[n_free + j])
    return LPResult(OPTIMAL, value)


def _float_lp(
    constraints: Sequence[Constraint], objective: LinExpr, maximize: bool
) -> Optional[Tuple[str, float]]:
    """Solve with HiGHS; None when scipy is unavailable or the solve fails."""
    if _EXACT_ONLY:
        return None
    if _highs_core is not None:
        result = _float_lp_direct(constraints, objective, maximize)
        if result is not None:
            return result
    if _linprog is None:
        return None
    variables = sorted(
        set().union(set(), *[c.support() for c in constraints], objective.support())
    )
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for c in constraints:
        row = [0.0] * n
        for var, k in c.expr.coeffs.items():
            row[index[var]] = float(k)
        if c.rel == GE:  # coeffs.x + const >= 0  ->  -coeffs.x <= const
            a_ub.append([-x for x in row])
            b_ub.append(float(c.expr.const))
        else:
            a_eq.append(row)
            b_eq.append(-float(c.expr.const))
    cvec = [0.0] * n
    sense = -1.0 if maximize else 1.0
    for var, k in objective.coeffs.items():
        cvec[index[var]] = sense * float(k)
    try:
        res = _linprog(
            cvec,
            A_ub=a_ub or None,
            b_ub=b_ub or None,
            A_eq=a_eq or None,
            b_eq=b_eq or None,
            bounds=[(None, None)] * n,
            method="highs",
        )
    except Exception:  # pragma: no cover - solver hiccup
        return None
    if res.status == 2:
        return (INFEASIBLE, 0.0)
    if res.status == 3:
        return (UNBOUNDED, 0.0)
    if res.status != 0:  # pragma: no cover - iteration/numeric trouble
        return None
    value = sense * res.fun + float(objective.const)
    return (OPTIMAL, value)


def _float_lp_direct(
    constraints: Sequence[Constraint], objective: LinExpr, maximize: bool
) -> Optional[Tuple[str, float]]:
    """Minimal-overhead path through scipy's bundled HiGHS bindings."""
    core = _highs_core
    variables = sorted(
        set().union(set(), *[c.support() for c in constraints], objective.support())
    )
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    if n == 0:
        for c in constraints:
            if c.is_contradiction():
                return (INFEASIBLE, 0.0)
        return (OPTIMAL, float(objective.const))
    inf = core.kHighsInf
    starts = [0]
    idx: List[int] = []
    vals: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    for c in constraints:
        row, const = c.float_row()
        for var, k in row:
            idx.append(index[var])
            vals.append(k)
        starts.append(len(idx))
        lower.append(-const)
        upper.append(-const if c.rel == EQ else inf)
    sense = -1.0 if maximize else 1.0
    cost = [0.0] * n
    for var, k in objective.coeffs.items():
        cost[index[var]] = sense * float(k)
    try:
        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = len(constraints)
        lp.col_cost_ = _np.asarray(cost, dtype=float)
        lp.col_lower_ = _np.full(n, -inf)
        lp.col_upper_ = _np.full(n, inf)
        lp.row_lower_ = _np.asarray(lower, dtype=float)
        lp.row_upper_ = _np.asarray(upper, dtype=float)
        lp.a_matrix_.format_ = core.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = _np.asarray(starts, dtype=_np.int32)
        lp.a_matrix_.index_ = _np.asarray(idx, dtype=_np.int32)
        lp.a_matrix_.value_ = _np.asarray(vals, dtype=float)
        solver = core._Highs()
        solver.setOptionValue("output_flag", False)
        solver.passModel(lp)
        solver.run()
        status = solver.getModelStatus()
    except Exception:  # pragma: no cover - fall back to linprog
        return None
    if status == core.HighsModelStatus.kInfeasible:
        return (INFEASIBLE, 0.0)
    if status == core.HighsModelStatus.kUnbounded:
        return (UNBOUNDED, 0.0)
    if status == core.HighsModelStatus.kUnboundedOrInfeasible:
        return None  # let the slower paths disambiguate
    if status != core.HighsModelStatus.kOptimal:  # pragma: no cover
        return None
    value = sense * solver.getInfo().objective_function_value + float(
        objective.const
    )
    return (OPTIMAL, value)


def is_feasible(constraints: Iterable[Constraint]) -> bool:
    """Rational feasibility of a constraint conjunction."""
    cons = list(constraints)
    fast = _float_lp(cons, LinExpr(), False)
    if fast is not None:
        return fast[0] != INFEASIBLE
    return solve_lp(cons, LinExpr()).status != INFEASIBLE


def _connected_subset(
    constraints: Sequence[Constraint], seeds: frozenset
) -> List[Constraint]:
    """Constraints in the variable-connectivity component of ``seeds``.

    If the remaining constraints are feasible, entailment of a candidate
    over ``seeds`` is unaffected by dropping them (disjoint variables), so
    the LP can run on a much smaller tableau.
    """
    reached = set(seeds)
    remaining = list(constraints)
    picked: List[Constraint] = []
    changed = True
    while changed:
        changed = False
        rest = []
        for c in remaining:
            support = c.support()
            if support & reached:
                reached |= support
                picked.append(c)
                changed = True
            else:
                rest.append(c)
        remaining = rest
    return picked


_ENTAILS_CACHE: dict = {}
_ENTAILS_CACHE_MAX = 400_000


def entails(
    constraints: Sequence[Constraint],
    candidate: Constraint,
    assume_feasible: bool = False,
) -> bool:
    """Sound and complete (over the rationals) entailment check.

    ``constraints |= candidate`` iff the system is infeasible or the
    candidate expression's minimum over the feasible region is >= 0 (and,
    for equalities, the maximum is <= 0 too).

    With ``assume_feasible`` the check may restrict itself to the
    constraints sharing variables (transitively) with the candidate, which
    is exact when the rest of the system is feasible.
    """
    if candidate.is_trivial():
        return True
    cand_key = candidate.key()
    # Syntactic fast path: the candidate (or an equality covering it)
    # already appears in the system.
    for c in constraints:
        if c.key() == cand_key:
            return True
    if assume_feasible:
        constraints = _connected_subset(constraints, candidate.support())
        if not constraints:
            return False  # feasible system, unconstrained direction
    sys_key = (frozenset(c.key() for c in constraints), cand_key)
    cached = _ENTAILS_CACHE.get(sys_key)
    if cached is not None:
        return cached
    answer = _min_nonnegative(constraints, candidate.expr)
    if answer and candidate.rel == EQ:
        answer = _min_nonnegative(constraints, candidate.expr.scale(-1))
    if len(_ENTAILS_CACHE) > _ENTAILS_CACHE_MAX:
        _ENTAILS_CACHE.clear()
    _ENTAILS_CACHE[sys_key] = answer
    return answer


def _min_nonnegative(constraints: Sequence[Constraint], expr: LinExpr) -> bool:
    """Is ``min expr >= 0`` over the constraints (True if infeasible)?

    Uses the float LP when its verdict has a clear margin; ambiguous
    results fall back to the exact simplex.
    """
    fast = _float_lp(constraints, expr, maximize=False)
    if fast is not None:
        status, value = fast
        if status == INFEASIBLE:
            return True
        if status == UNBOUNDED:
            return False
        if value >= -_TIGHT:
            return True
        if value < -_CLEAR:
            return False
    result = solve_lp(constraints, expr, maximize=False)
    if result.status == INFEASIBLE:
        return True
    if result.status == UNBOUNDED:
        return False
    return result.value >= 0


def sample_point(constraints: Sequence[Constraint]) -> Optional[dict]:
    """Return a rational point satisfying the constraints, or None.

    Used by tests as a witness generator.
    """
    cons = [c for c in constraints if not c.is_trivial()]
    for c in cons:
        if c.is_contradiction():
            return None
    variables = sorted(set().union(set(), *[c.support() for c in cons]))
    if not variables:
        return {}
    # Minimize 0 to run phase 1, then read off basic values.
    result = solve_lp(cons, LinExpr())
    if result.status == INFEASIBLE:
        return None
    # Re-run internally to extract a point: minimize each variable summed,
    # bounded check avoided by minimizing 0 and extracting from tableau is
    # not exposed; instead minimize nothing and probe coordinates greedily.
    point = {}
    fixed: List[Constraint] = list(cons)
    for var in variables:
        lo = solve_lp(fixed, LinExpr.var(var), maximize=False)
        if lo.status == OPTIMAL:
            value = lo.value
        else:
            hi = solve_lp(fixed, LinExpr.var(var), maximize=True)
            value = hi.value if hi.status == OPTIMAL else Fraction(0)
        point[var] = value
        fixed.append(Constraint.eq(LinExpr.var(var), LinExpr.const_expr(value)))
    return point
