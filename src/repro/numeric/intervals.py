"""A small interval domain.

Used as a cheap numeric base domain in ablation benchmarks (DESIGN.md §5
decision 1) and as an oracle in property tests: every fact the interval
domain derives must also be derivable by the polyhedra-lite domain.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.numeric.linexpr import Constraint, EQ, LinExpr


class Interval:
    """A closed interval with optional infinite endpoints (None)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[Fraction] = None, hi: Optional[Fraction] = None):
        self.lo = lo
        self.hi = hi

    @staticmethod
    def const(value) -> "Interval":
        f = Fraction(value)
        return Interval(f, f)

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        lo = other.lo if self.lo is None else (self.lo if other.lo is None else max(self.lo, other.lo))
        hi = other.hi if self.hi is None else (self.hi if other.hi is None else min(self.hi, other.hi))
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        lo = self.lo if (self.lo is not None and other.lo is not None and other.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and other.hi is not None and other.hi <= self.hi) else None
        return Interval(lo, hi)

    def leq(self, other: "Interval") -> bool:
        if self.is_empty():
            return True
        if other.is_empty():
            return False
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        return lo_ok and hi_ok

    def add(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def scale(self, k: Fraction) -> "Interval":
        if k == 0:
            return Interval.const(0)
        if k > 0:
            lo = None if self.lo is None else self.lo * k
            hi = None if self.hi is None else self.hi * k
        else:
            lo = None if self.hi is None else self.hi * k
            hi = None if self.lo is None else self.lo * k
        return Interval(lo, hi)

    def contains(self, value: Fraction) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, Interval) and self.lo == other.lo and self.hi == other.hi

    def __repr__(self) -> str:
        lo = "-oo" if self.lo is None else str(self.lo)
        hi = "+oo" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


class IntervalEnv:
    """A non-relational environment: term name -> interval (or bottom)."""

    __slots__ = ("env", "_bottom")

    def __init__(self, env: Optional[Mapping[str, Interval]] = None, bottom: bool = False):
        self._bottom = bottom
        self.env: Dict[str, Interval] = dict(env or {})
        if not bottom and any(iv.is_empty() for iv in self.env.values()):
            self._bottom = True
            self.env = {}

    @staticmethod
    def top() -> "IntervalEnv":
        return IntervalEnv()

    @staticmethod
    def bottom() -> "IntervalEnv":
        return IntervalEnv(bottom=True)

    def is_bottom(self) -> bool:
        return self._bottom

    def get(self, var: str) -> Interval:
        return self.env.get(var, Interval.top())

    def set(self, var: str, interval: Interval) -> "IntervalEnv":
        if self._bottom:
            return self
        if interval.is_empty():
            return IntervalEnv.bottom()
        env = dict(self.env)
        env[var] = interval
        return IntervalEnv(env)

    def eval_expr(self, expr: LinExpr) -> Interval:
        if self._bottom:
            return Interval(Fraction(1), Fraction(0))
        result = Interval.const(expr.const)
        for var, k in expr.coeffs.items():
            result = result.add(self.get(var).scale(k))
        return result

    def add_constraint(self, constraint: Constraint) -> "IntervalEnv":
        """Best-effort refinement by a linear constraint (sound, incomplete)."""
        if self._bottom:
            return self
        out = self
        for half in constraint.halves():
            out = out._refine_ge(half.expr)
            if out._bottom:
                return out
        return out

    def _refine_ge(self, expr: LinExpr) -> "IntervalEnv":
        # expr >= 0.  For each variable, bound it using the others.
        value = self.eval_expr(expr)
        if value.hi is not None and value.hi < 0:
            return IntervalEnv.bottom()
        out = self
        for var, k in expr.coeffs.items():
            rest = LinExpr({v: c for v, c in expr.coeffs.items() if v != var}, expr.const)
            rest_iv = self.eval_expr(rest)
            # k*var >= -rest
            if k > 0:
                if rest_iv.hi is not None:
                    bound = -Fraction(rest_iv.hi) / k  # exact: never int/int
                    out = out.set(var, out.get(var).meet(Interval(bound, None)))
            else:
                if rest_iv.hi is not None:
                    bound = Fraction(rest_iv.hi) / (-k)
                    out = out.set(var, out.get(var).meet(Interval(None, bound)))
            if out._bottom:
                return out
        return out

    def join(self, other: "IntervalEnv") -> "IntervalEnv":
        if self._bottom:
            return other
        if other._bottom:
            return self
        env = {}
        for var in set(self.env) & set(other.env):
            env[var] = self.env[var].join(other.env[var])
        return IntervalEnv(env)

    def widen(self, other: "IntervalEnv") -> "IntervalEnv":
        if self._bottom:
            return other
        if other._bottom:
            return self
        env = {}
        for var in set(self.env) & set(other.env):
            env[var] = self.env[var].widen(other.env[var])
        return IntervalEnv(env)

    def leq(self, other: "IntervalEnv") -> bool:
        if self._bottom:
            return True
        if other._bottom:
            return False
        return all(self.get(var).leq(iv) for var, iv in other.env.items())

    def project(self, variables: Iterable[str]) -> "IntervalEnv":
        if self._bottom:
            return self
        env = {v: iv for v, iv in self.env.items() if v not in set(variables)}
        return IntervalEnv(env)

    def __repr__(self) -> str:
        if self._bottom:
            return "IntervalEnv(bottom)"
        inner = ", ".join(f"{v}: {iv}" for v, iv in sorted(self.env.items()))
        return f"IntervalEnv({inner})"
