"""Linear expressions and constraints over named terms.

The whole analysis works with *symbolic terms* as variables: strings such
as ``"hd(n3)"``, ``"len(n3)"``, ``"n3[y1]"``, ``"y1"`` or a plain data
variable name.  A :class:`LinExpr` is an affine combination of such terms
with exact rational coefficients; a :class:`Constraint` is ``expr >= 0`` or
``expr == 0``.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Iterable, Mapping, Tuple, Union

Coeff = Union[int, Fraction]

GE = ">="
EQ = "=="


def _frac(value: Coeff):
    """Coerce to an exact rational, keeping plain ints as ints.

    ``int`` is a drop-in exact rational here: it supports ``.numerator``/
    ``.denominator``, promotes through mixed arithmetic with Fraction,
    and hashes/compares equal to the same-valued Fraction -- while its
    add/mul skip Fraction's per-operation gcd normalization.  The few
    true divisions over coefficient values coerce their operands
    explicitly (see intervals/multiset/simplex).
    """
    return value if isinstance(value, (Fraction, int)) else Fraction(value)


def _intish(value: Fraction):
    """An int when exact (the common case after normalization)."""
    return value.numerator if value.denominator == 1 else value


class LinExpr:
    """An immutable affine expression ``sum(coeff_i * var_i) + const``."""

    __slots__ = ("coeffs", "const", "_hash", "_norm", "_support")

    def __init__(self, coeffs: Mapping[str, Coeff] = (), const: Coeff = 0):
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        clean: Dict[str, Fraction] = {}
        for var, c in items:
            fc = _frac(c)
            if fc != 0:
                clean[var] = fc
        self.coeffs: Dict[str, Fraction] = clean
        self.const: Fraction = _frac(const)
        self._hash = None
        self._norm = None
        self._support = None

    # -- constructors ----------------------------------------------------

    @staticmethod
    def var(name: str) -> "LinExpr":
        """The expression consisting of the single term ``name``."""
        return LinExpr({name: 1})

    @staticmethod
    def const_expr(value: Coeff) -> "LinExpr":
        """A constant expression."""
        return LinExpr({}, value)

    # -- basic queries ----------------------------------------------------

    def is_const(self) -> bool:
        return not self.coeffs

    def support(self) -> frozenset:
        """The set of term names with non-zero coefficient."""
        if self._support is None:
            self._support = frozenset(self.coeffs)
        return self._support

    def coeff(self, var: str):
        return self.coeffs.get(var, 0)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: Union["LinExpr", Coeff]) -> "LinExpr":
        if not isinstance(other, LinExpr):
            return LinExpr(self.coeffs, self.const + _frac(other))
        coeffs = dict(self.coeffs)
        for var, c in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + c
        return LinExpr(coeffs, self.const + other.const)

    def __sub__(self, other: Union["LinExpr", Coeff]) -> "LinExpr":
        if not isinstance(other, LinExpr):
            return LinExpr(self.coeffs, self.const - _frac(other))
        return self + other.scale(-1)

    def __neg__(self) -> "LinExpr":
        return self.scale(-1)

    def scale(self, k: Coeff) -> "LinExpr":
        fk = _frac(k)
        if fk == 1:
            return self
        if fk == -1:  # negation needs no gcd work
            return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)
        return LinExpr({v: c * fk for v, c in self.coeffs.items()}, self.const * fk)

    def substitute(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Replace each term in ``mapping`` by the given expression."""
        if not any(var in mapping for var in self.coeffs):
            return self
        coeffs: Dict[str, Fraction] = {}
        const = self.const
        zero = Fraction(0)
        for var, c in self.coeffs.items():
            repl = mapping.get(var)
            if repl is None:
                coeffs[var] = coeffs.get(var, zero) + c
            else:
                const += repl.const * c
                for v, k in repl.coeffs.items():
                    coeffs[v] = coeffs.get(v, zero) + k * c
        return LinExpr(coeffs, const)

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename terms (non-renamed terms are kept)."""
        coeffs: Dict[str, Fraction] = {}
        for var, c in self.coeffs.items():
            new = mapping.get(var, var)
            coeffs[new] = coeffs.get(new, 0) + c
        return LinExpr(coeffs, self.const)

    def evaluate(self, env: Mapping[str, Coeff]) -> Fraction:
        """Evaluate under a full assignment of the support."""
        total = self.const
        for var, c in self.coeffs.items():
            total += c * _frac(env[var])
        return total

    # -- canonical form ---------------------------------------------------

    def normalized(self) -> "LinExpr":
        """Scale so coefficients are coprime integers.

        The sign convention (leading coefficient positive) is *not* applied
        here because it would flip inequality directions; equality
        constraints apply it in :meth:`Constraint.normalized`.
        """
        if self._norm is not None:
            return self._norm
        if not self.coeffs and self.const == 0:
            self._norm = self
            return self
        lcm = self.const.denominator
        for c in self.coeffs.values():
            d = c.denominator
            if d != 1:
                lcm = lcm * d // gcd(lcm, d)
        if lcm == 1:
            # All-integer expression (the common case): divide out the
            # gcd with plain int arithmetic.
            g = abs(self.const.numerator)
            for c in self.coeffs.values():
                g = gcd(g, c.numerator)
                if g == 1:
                    break
            if g <= 1:
                result = self
            else:
                result = LinExpr(
                    {v: c.numerator // g for v, c in self.coeffs.items()},
                    self.const.numerator // g,
                )
        else:
            nums = [abs(int(c * lcm)) for c in self.coeffs.values() if c != 0]
            if self.const != 0:
                nums.append(abs(int(self.const * lcm)))
            g = 0
            for n in nums:
                g = gcd(g, n)
            factor = Fraction(lcm, g if g else 1)
            result = self.scale(factor) if factor != 1 else self
        result._norm = result
        self._norm = result
        return result

    def key(self) -> Tuple:
        """A hashable canonical key (integer entries hash much faster)."""
        norm = self.normalized()
        return (
            tuple(sorted((v, _intish(c)) for v, c in norm.coeffs.items())),
            _intish(norm.const),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LinExpr)
            and self.coeffs == other.coeffs
            and self.const == other.const
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((tuple(sorted(self.coeffs.items())), self.const))
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for var in sorted(self.coeffs):
            c = self.coeffs[var]
            if c == 1:
                parts.append(f"+ {var}")
            elif c == -1:
                parts.append(f"- {var}")
            elif c > 0:
                parts.append(f"+ {c}*{var}")
            else:
                parts.append(f"- {-c}*{var}")
        if self.const != 0 or not parts:
            parts.append(f"+ {self.const}" if self.const >= 0 else f"- {-self.const}")
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else text


class Constraint:
    """A linear constraint ``expr >= 0`` (``GE``) or ``expr == 0`` (``EQ``)."""

    __slots__ = ("expr", "rel", "_hash", "_key", "_norm", "_frow", "_dir")

    def __init__(self, expr: LinExpr, rel: str):
        if rel not in (GE, EQ):
            raise ValueError(f"unknown relation {rel!r}")
        self.expr = expr
        self.rel = rel
        self._hash = None
        self._key = None
        self._norm = None
        self._frow = None  # cached float view for the LP fast path
        self._dir = None  # cached (direction, eff const); see polyhedra

    def float_row(self):
        """((var, float coeff)...), float const -- cached for the LP layer."""
        if self._frow is None:
            self._frow = (
                tuple((v, float(k)) for v, k in self.expr.coeffs.items()),
                float(self.expr.const),
            )
        return self._frow

    # -- constructors ----------------------------------------------------

    @staticmethod
    def ge(lhs: LinExpr, rhs: Union[LinExpr, Coeff] = 0) -> "Constraint":
        """``lhs >= rhs``."""
        rhs_expr = rhs if isinstance(rhs, LinExpr) else LinExpr.const_expr(rhs)
        return Constraint(lhs - rhs_expr, GE)

    @staticmethod
    def le(lhs: LinExpr, rhs: Union[LinExpr, Coeff] = 0) -> "Constraint":
        """``lhs <= rhs``."""
        rhs_expr = rhs if isinstance(rhs, LinExpr) else LinExpr.const_expr(rhs)
        return Constraint(rhs_expr - lhs, GE)

    @staticmethod
    def eq(lhs: LinExpr, rhs: Union[LinExpr, Coeff] = 0) -> "Constraint":
        """``lhs == rhs``."""
        rhs_expr = rhs if isinstance(rhs, LinExpr) else LinExpr.const_expr(rhs)
        return Constraint(lhs - rhs_expr, EQ)

    @staticmethod
    def lt_int(lhs: LinExpr, rhs: Union[LinExpr, Coeff] = 0) -> "Constraint":
        """``lhs < rhs`` under *integer* semantics, i.e. ``lhs <= rhs - 1``.

        All analysis variables denote integers, so strict inequalities are
        tightened rather than approximated.
        """
        rhs_expr = rhs if isinstance(rhs, LinExpr) else LinExpr.const_expr(rhs)
        return Constraint(rhs_expr - lhs - LinExpr.const_expr(1), GE)

    @staticmethod
    def gt_int(lhs: LinExpr, rhs: Union[LinExpr, Coeff] = 0) -> "Constraint":
        """``lhs > rhs`` under integer semantics, i.e. ``lhs >= rhs + 1``."""
        rhs_expr = rhs if isinstance(rhs, LinExpr) else LinExpr.const_expr(rhs)
        return Constraint(lhs - rhs_expr - LinExpr.const_expr(1), GE)

    # -- queries ----------------------------------------------------------

    def support(self) -> frozenset:
        return self.expr.support()

    def is_trivial(self) -> bool:
        """True for constraints with empty support that hold (e.g. 3 >= 0)."""
        if self.expr.coeffs:
            return False
        if self.rel == GE:
            return self.expr.const >= 0
        return self.expr.const == 0

    def is_contradiction(self) -> bool:
        """True for constraints with empty support that fail (e.g. -1 >= 0)."""
        if self.expr.coeffs:
            return False
        if self.rel == GE:
            return self.expr.const < 0
        return self.expr.const != 0

    # -- transforms -------------------------------------------------------

    def substitute(self, mapping: Mapping[str, LinExpr]) -> "Constraint":
        return Constraint(self.expr.substitute(mapping), self.rel)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.rel)

    def halves(self) -> Iterable["Constraint"]:
        """Decompose into inequality halves (an equality gives two)."""
        if self.rel == GE:
            yield self
        else:
            yield Constraint(self.expr, GE)
            yield Constraint(self.expr.scale(-1), GE)

    def normalized(self) -> "Constraint":
        if self._norm is not None:
            return self._norm
        expr = self.expr.normalized()
        if self.rel == EQ and expr.coeffs:
            first_var = min(expr.coeffs)
            if expr.coeffs[first_var] < 0:
                expr = expr.scale(-1).normalized()
        result = self if expr is self.expr else Constraint(expr, self.rel)
        result._norm = result
        self._norm = result
        return result

    def key(self) -> Tuple:
        if self._key is None:
            norm = self.normalized()
            self._key = (norm.rel,) + norm.expr.key()
        return self._key

    def holds(self, env: Mapping[str, Coeff]) -> bool:
        value = self.expr.evaluate(env)
        return value >= 0 if self.rel == GE else value == 0

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constraint)
            and self.rel == other.rel
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.rel, self.expr))
        return self._hash

    def __repr__(self) -> str:
        return f"{self.expr!r} {self.rel} 0"
