"""A conjunction-of-linear-constraints abstract domain ("polyhedra-lite").

Elements are finite conjunctions of linear constraints over named terms,
with exact rational arithmetic.  Compared to full polyhedra (APRON, used by
the paper), the join is the *mutual-entailment filter* over the inequality
halves of both sides -- a sound over-approximation of the convex hull that
is precise for the interval/difference/sum constraints arising in list
analyses -- and the widening is the standard constraint-dropping widening.

Entailment and feasibility are decided exactly (over the rationals) with
the simplex solver; projection is Fourier-Motzkin with equality
substitution.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import kernels
from repro.numeric.linexpr import EQ, GE, Constraint, LinExpr
from repro.numeric import simplex

_FM_BLOWUP_CAP = 600

# Join memo (fast-kernel mode): hull joins recur heavily across fixpoint
# iterations -- the same pair of constraint systems is joined at every
# visit of a loop head.  Keyed on the ORDERED constraint-key tuples of
# both operands: a Polyhedron's constraint tuple is a deterministic
# function of the ordered normalized keys, so equal keys mean
# representation-identical operands and the cached result is
# representation-identical to a fresh join.
_JOIN_CACHE: dict = {}
_JOIN_CACHE_MAX = 50_000
_JOIN_STATS = {"hits": 0, "misses": 0}

# minimized() memo.  Keyed on the exact (non-normalized) constraint tuple:
# Constraint.__hash__/__eq__ compare representations bit-for-bit, so a hit
# returns the very Polyhedron a fresh sweep over the same list would build.
_MIN_CACHE: dict = {}
_MIN_CACHE_MAX = 50_000
_MIN_STATS = {"hits": 0, "misses": 0}


def cache_stats() -> dict:
    return {
        "join_hits": _JOIN_STATS["hits"],
        "join_misses": _JOIN_STATS["misses"],
        "join_entries": len(_JOIN_CACHE),
        "min_hits": _MIN_STATS["hits"],
        "min_misses": _MIN_STATS["misses"],
        "min_entries": len(_MIN_CACHE),
    }


def clear_caches() -> None:
    _JOIN_CACHE.clear()
    _JOIN_STATS["hits"] = _JOIN_STATS["misses"] = 0
    _MIN_CACHE.clear()
    _MIN_STATS["hits"] = _MIN_STATS["misses"] = 0


def _direction_of(constraint: Constraint) -> Tuple[Tuple, Fraction]:
    """Canonical (coefficient-direction key, effective constant).

    Two GE constraints with the same direction key are parallel; the one
    with the smaller effective constant is the tighter.
    """
    if constraint._dir is not None:
        return constraint._dir
    expr = constraint.expr
    items = sorted(expr.coeffs.items())
    first = items[0][1]
    scale = Fraction(1) / abs(first)
    direction = tuple((v, k * scale) for v, k in items)
    constraint._dir = (direction, expr.const * scale)
    return constraint._dir


class Polyhedron:
    """An immutable conjunction of linear constraints (or bottom)."""

    __slots__ = (
        "constraints",
        "_bottom",
        "_feasible",
        "_entail_cache",
        "_eq_basis",
        "_ge_keys",
    )

    def __init__(self, constraints: Iterable[Constraint] = (), bottom: bool = False):
        if bottom:
            self.constraints: Tuple[Constraint, ...] = ()
            self._bottom: Optional[bool] = True
        else:
            # Dedup by canonical key and keep only the tightest of any
            # family of parallel inequalities (same coefficient direction);
            # Fourier-Motzkin output is dominated by such redundancy.
            by_direction: Dict[Tuple, Tuple[Fraction, Constraint]] = {}
            eqs: Dict[Tuple, Constraint] = {}
            contradiction = False
            for c in constraints:
                if c.is_trivial():
                    continue
                if c.is_contradiction():
                    contradiction = True
                    break
                norm = c.normalized()
                if norm.rel == EQ:
                    eqs.setdefault(norm.key(), norm)
                    continue
                direction, eff_const = _direction_of(norm)
                best = by_direction.get(direction)
                if best is None or eff_const < best[0]:
                    by_direction[direction] = (eff_const, norm)
            if contradiction:
                self.constraints = ()
                self._bottom = True
            else:
                kept = list(eqs.values()) + [
                    c for _, c in by_direction.values()
                ]
                self.constraints = tuple(kept)
                self._bottom = None if kept else False
        self._feasible: Optional[bool] = None
        self._entail_cache: Dict[Tuple, bool] = {}
        self._eq_basis = None
        self._ge_keys = None

    # -- constructors ----------------------------------------------------

    @staticmethod
    def top() -> "Polyhedron":
        return _TOP

    @staticmethod
    def bottom() -> "Polyhedron":
        return _BOTTOM

    @staticmethod
    def of(*constraints: Constraint) -> "Polyhedron":
        return Polyhedron(constraints)

    # -- queries ----------------------------------------------------------

    def is_bottom(self) -> bool:
        if self._bottom is not None:
            return self._bottom
        if self._feasible is None:
            self._feasible = simplex.is_feasible(self.constraints)
        self._bottom = not self._feasible
        return self._bottom

    def is_top(self) -> bool:
        return not self.constraints and self._bottom is not True

    def support(self) -> frozenset:
        if self._bottom is True:
            return frozenset()
        out: Set[str] = set()
        for c in self.constraints:
            out |= c.support()
        return frozenset(out)

    def _gauss_prescreen(self, candidate: Constraint) -> Optional[bool]:
        """Decide entailment by reduction against the equality basis.

        Complete for equality consequences of equalities; for inequalities
        it answers True when the reduced form matches a stored inequality
        (or is trivially valid).  Returns None when undecided -- the LP
        handles those.  Only valid on feasible polyhedra.
        """
        from repro.numeric.linalg import reduce_against

        if self._eq_basis is None:
            from repro.numeric.linalg import rref

            rows = []
            for c in self.constraints:
                if c.rel == EQ:
                    row = dict(c.expr.coeffs)
                    if c.expr.const != 0:
                        row[_CONST] = c.expr.const
                    rows.append(row)
            columns = sorted(set().union(set(), *rows))
            self._eq_basis = (rref(rows, columns), columns)
            self._ge_keys = {
                c.key() for c in self.constraints if c.rel == GE
            }
        basis, columns = self._eq_basis
        row = dict(candidate.expr.coeffs)
        if candidate.expr.const != 0:
            row[_CONST] = candidate.expr.const
        if basis:
            # extend columns with any new variables (they reduce trivially)
            cols = columns + [v for v in row if v not in columns]
            row = reduce_against(row, basis, cols)
        const = row.pop(_CONST, Fraction(0))
        if not row:
            if candidate.rel == EQ:
                return const == 0
            return True if const >= 0 else None
        if candidate.rel == GE:
            reduced = Constraint(LinExpr(row, const), GE)
            if reduced.key() in self._ge_keys:
                return True
        return None

    def entails(self, candidate: Constraint) -> bool:
        if self._bottom is True:
            return True
        key = candidate.key()
        cached = self._entail_cache.get(key)
        if cached is None:
            if self.is_bottom():
                cached = True
            else:
                cached = self._gauss_prescreen(candidate)
                if cached is None:
                    cached = simplex.entails(
                        self.constraints, candidate, assume_feasible=True
                    )
            self._entail_cache[key] = cached
        return cached

    def entails_all(self, candidates: Iterable[Constraint]) -> bool:
        return all(self.entails(c) for c in candidates)

    def leq(self, other: "Polyhedron") -> bool:
        """Inclusion: gamma(self) included in gamma(other)."""
        if self.is_bottom():
            return True
        if other._bottom is True:
            return False
        return self.entails_all(other.constraints)

    def equivalent(self, other: "Polyhedron") -> bool:
        return self.leq(other) and other.leq(self)

    def satisfies(self, env: Mapping[str, Fraction]) -> bool:
        """Does the concrete point satisfy every constraint?"""
        if self._bottom is True:
            return False
        return all(c.holds(env) for c in self.constraints)

    def bounds(self, expr: LinExpr) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """(min, max) of expr over the polyhedron; None means unbounded."""
        if self.is_bottom():
            return (None, None)
        lo = simplex.solve_lp(self.constraints, expr, maximize=False)
        hi = simplex.solve_lp(self.constraints, expr, maximize=True)
        return (
            lo.value if lo.status == simplex.OPTIMAL else None,
            hi.value if hi.status == simplex.OPTIMAL else None,
        )

    # -- lattice operations ------------------------------------------------

    def meet(self, other: "Polyhedron") -> "Polyhedron":
        if self._bottom is True or other._bottom is True:
            return _BOTTOM
        return Polyhedron(self.constraints + other.constraints)

    def meet_constraints(self, constraints: Iterable[Constraint]) -> "Polyhedron":
        if self._bottom is True:
            return _BOTTOM
        return Polyhedron(self.constraints + tuple(constraints))

    def join(self, other: "Polyhedron") -> "Polyhedron":
        """Join: the exact convex hull when tractable, else the weak join.

        The hull uses the Benoy-King-Mesnard encoding (scale one operand by
        λ, the other by 1-λ, then project); when Fourier-Motzkin explodes,
        fall back to the mutual-entailment filter enriched with the common
        affine hull.
        """
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        if self is other:
            return self
        if kernels.FAST:
            memo_key = (
                tuple(c.key() for c in self.constraints),
                tuple(c.key() for c in other.constraints),
            )
            cached = _JOIN_CACHE.get(memo_key)
            if cached is not None:
                _JOIN_STATS["hits"] += 1
                return cached
            _JOIN_STATS["misses"] += 1
        result = self._hull_join(other)
        if result is None:
            result = self._weak_join(other)
        if kernels.FAST:
            if len(_JOIN_CACHE) > _JOIN_CACHE_MAX:
                _JOIN_CACHE.clear()
            _JOIN_CACHE[memo_key] = result
        return result

    def _hull_join(self, other: "Polyhedron") -> Optional["Polyhedron"]:
        variables = sorted(self.support() | other.support())
        if len(variables) > 24 or (
            len(self.constraints) + len(other.constraints) > 60
        ):
            return None
        lam = "$lam"
        aux = {v: f"$a_{v}" for v in variables}
        cons: List[Constraint] = []
        for c in self.constraints:
            # a.x + b >= 0 scaled onto (y, lam): a.y + b*lam >= 0
            coeffs = {aux[v]: k for v, k in c.expr.coeffs.items()}
            if c.expr.const != 0:
                coeffs[lam] = coeffs.get(lam, Fraction(0)) + c.expr.const
            cons.append(Constraint(LinExpr(coeffs), c.rel))
        for c in other.constraints:
            # scaled onto (x - y, 1 - lam)
            coeffs: Dict[str, Fraction] = {}
            for v, k in c.expr.coeffs.items():
                coeffs[v] = coeffs.get(v, Fraction(0)) + k
                coeffs[aux[v]] = coeffs.get(aux[v], Fraction(0)) - k
            if c.expr.const != 0:
                coeffs[lam] = coeffs.get(lam, Fraction(0)) - c.expr.const
            cons.append(Constraint(LinExpr(coeffs, c.expr.const), c.rel))
        cons.append(Constraint.ge(LinExpr.var(lam), 0))
        cons.append(Constraint.le(LinExpr.var(lam), 1))
        combined = Polyhedron(cons)
        eliminate = [lam] + [aux[v] for v in variables]
        result = combined._project_capped(eliminate, cap=48)
        if result is None:
            return None
        return result.reduced()

    def _project_capped(
        self, variables: List[str], cap: int
    ) -> Optional["Polyhedron"]:
        """Projection that gives up (returns None) on FM blowup."""
        cons = list(self.constraints)
        for var in variables:
            cons = _eliminate(cons, var)
            if cons is None:
                return _BOTTOM
            if len(cons) > cap:
                cons = Polyhedron(cons).minimized().constraints
                if len(cons) > cap:
                    return None
                cons = list(cons)
        return Polyhedron(cons)

    def _weak_join(self, other: "Polyhedron") -> "Polyhedron":
        candidates: List[Constraint] = list(
            _common_equalities(self.equalities(), other.equalities())
        )
        seen: Set[Tuple] = {c.key() for c in candidates}
        for c in self.constraints + other.constraints:
            for half in c.halves():
                k = half.key()
                if k not in seen:
                    seen.add(k)
                    candidates.append(half)
        kept = [c for c in candidates if self.entails(c) and other.entails(c)]
        return Polyhedron(_recover_equalities(kept)).reduced()

    def widen(self, other: "Polyhedron") -> "Polyhedron":
        """Standard widening: drop constraints of self not entailed by other.

        Additionally keeps equalities of ``other`` entailed by ``self``
        (APRON-style mutual-redundancy refinement) which preserves
        relational facts like ``len(x) == len(x0)`` across iterations.
        """
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        kept: List[Constraint] = []
        for c in _common_equalities(self.equalities(), other.equalities()):
            if self.entails(c) and other.entails(c):
                kept.append(c)
        for c in self.constraints:
            for half in c.halves():
                if other.entails(half):
                    kept.append(half)
        for c in other.constraints:
            if c.rel == EQ and self.entails(c):
                kept.append(c)
        return Polyhedron(_recover_equalities(kept))

    # -- transforms -------------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "Polyhedron":
        if self._bottom is True:
            return _BOTTOM
        return Polyhedron(c.rename(mapping) for c in self.constraints)

    def substitute(self, mapping: Mapping[str, LinExpr]) -> "Polyhedron":
        if self._bottom is True:
            return _BOTTOM
        return Polyhedron(c.substitute(mapping) for c in self.constraints)

    def project(self, variables: Iterable[str]) -> "Polyhedron":
        """Existentially quantify the given terms (Fourier-Motzkin)."""
        if self._bottom is True:
            return _BOTTOM
        target = set(variables) & set(self.support())
        if not target:
            return self
        if self.is_bottom():
            return _BOTTOM
        cons = list(self.constraints)
        for var in sorted(target):
            cons = _eliminate(cons, var)
            if cons is None:
                return _BOTTOM
        return Polyhedron(cons).reduced()

    def forget(self, variables: Iterable[str]) -> "Polyhedron":
        return self.project(variables)

    def restrict_to(self, variables: Iterable[str]) -> "Polyhedron":
        """Project away everything *outside* ``variables``."""
        keep = set(variables)
        return self.project([v for v in self.support() if v not in keep])

    def assign(self, var: str, expr: LinExpr) -> "Polyhedron":
        """Strongest post of the assignment ``var := expr``."""
        if self._bottom is True:
            return _BOTTOM
        fresh = var + "'$assign"
        with_def = self.meet_constraints([Constraint.eq(LinExpr.var(fresh), expr)])
        return with_def.project([var]).rename({fresh: var})

    def reduced(self, threshold: int = 10) -> "Polyhedron":
        """LP-minimize only when large (cheap parallel-dropping already
        happened in the constructor)."""
        if self._bottom is True or len(self.constraints) <= 1:
            return self
        return self.minimized()

    def minimized(self) -> "Polyhedron":
        """Drop semantically redundant constraints."""
        if self._bottom is True:
            return _BOTTOM
        cons = list(self.constraints)
        if len(cons) <= 1:
            return self
        if kernels.FAST:
            mkey = tuple(cons)
            cached = _MIN_CACHE.get(mkey)
            if cached is not None:
                _MIN_STATS["hits"] += 1
                return cached
            _MIN_STATS["misses"] += 1
        result = None
        if kernels.FAST and len(cons) > simplex._INT_DIRECT_MAX:
            # Large sweeps share one warm-started LP model instead of
            # building a model per entailment check.
            kept = simplex.minimize_constraints(cons)
            if kept is not None:
                result = Polyhedron(kept)
        if result is None:
            kept = []
            for i, c in enumerate(cons):
                rest = kept + cons[i + 1 :]
                if not simplex.entails(rest, c, assume_feasible=True):
                    kept.append(c)
            result = Polyhedron(kept)
        if kernels.FAST:
            if len(_MIN_CACHE) > _MIN_CACHE_MAX:
                _MIN_CACHE.clear()
            _MIN_CACHE[mkey] = result
        return result

    def equalities(self) -> List[Constraint]:
        return [c for c in self.constraints if c.rel == EQ]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Polyhedron):
            return NotImplemented
        return self.equivalent(other)

    def __hash__(self) -> int:  # structural hash; semantic eq is not hashable
        return hash((self._bottom is True, frozenset(c.key() for c in self.constraints)))

    def __repr__(self) -> str:
        if self._bottom is True:
            return "Poly(bottom)"
        if not self.constraints:
            return "Poly(top)"
        return "Poly(" + " & ".join(repr(c) for c in self.constraints) + ")"


def _eliminate(cons: List[Constraint], var: str) -> Optional[List[Constraint]]:
    """Eliminate ``var`` from a constraint list; None signals bottom."""
    # Prefer substitution through an equality involving var.
    for i, c in enumerate(cons):
        if c.rel == EQ and var in c.expr.coeffs:
            a = c.expr.coeffs[var]
            rest = LinExpr(
                {v: k for v, k in c.expr.coeffs.items() if v != var}, c.expr.const
            )
            replacement = rest.scale(Fraction(-1) / a)
            out = []
            for j, d in enumerate(cons):
                if j == i:
                    continue
                sub = d.substitute({var: replacement})
                if sub.is_contradiction():
                    return None
                if not sub.is_trivial():
                    out.append(sub)
            return out
        # An inequality mentioning var but nothing else on one side is fine
        # for the generic FM path below.
    pos: List[Constraint] = []
    neg: List[Constraint] = []
    rest_cons: List[Constraint] = []
    for c in cons:
        k = c.expr.coeffs.get(var)
        if k is None or k == 0:
            rest_cons.append(c)
        elif k > 0:
            pos.append(c)
        else:
            neg.append(c)
    if len(pos) * len(neg) > _FM_BLOWUP_CAP:
        # Sound fallback: drop all constraints mentioning var.
        return rest_cons
    for p in pos:
        kp = p.expr.coeffs[var]
        for q in neg:
            kq = q.expr.coeffs[var]
            combo = _fm_combo(p.expr, q.expr, kp, kq)
            new = Constraint(combo, GE)
            if new.is_contradiction():
                return None
            if not new.is_trivial():
                rest_cons.append(new)
    return rest_cons


def _fm_combo(pe: LinExpr, qe: LinExpr, kp: Fraction, kq: Fraction) -> LinExpr:
    """The FM combination ``pe * (-kq) + qe * kp`` in one pass.

    Equivalent to ``pe.scale(-kq) + qe.scale(kp)`` without the two
    intermediate expressions; when every value involved is an integer
    (the common case -- stored constraints are normalized to coprime
    integers, and integer combos stay integral) the accumulation runs on
    plain ints, skipping Fraction's per-operation gcd normalization.
    """
    a = -kq
    b = kp
    if (
        a.denominator == 1
        and b.denominator == 1
        and pe.const.denominator == 1
        and qe.const.denominator == 1
    ):
        ia = a.numerator
        ib = b.numerator
        coeffs: dict = {}
        for v, k in pe.coeffs.items():
            if k.denominator != 1:
                break
            coeffs[v] = k.numerator * ia
        else:
            for v, k in qe.coeffs.items():
                if k.denominator != 1:
                    break
                coeffs[v] = coeffs.get(v, 0) + k.numerator * ib
            else:
                return LinExpr(
                    coeffs, pe.const.numerator * ia + qe.const.numerator * ib
                )
    coeffs = {v: k * a for v, k in pe.coeffs.items()}
    for v, k in qe.coeffs.items():
        cur = coeffs.get(v)
        coeffs[v] = k * b if cur is None else cur + k * b
    return LinExpr(coeffs, pe.const * a + qe.const * b)


def _recover_equalities(inequalities: Sequence[Constraint]) -> List[Constraint]:
    """Pair up opposite inequality halves back into equalities."""
    by_key: Dict[Tuple, Constraint] = {}
    result: List[Constraint] = []
    consumed: Set[int] = set()
    normed = [c.normalized() for c in inequalities]
    for i, c in enumerate(normed):
        if c.rel != GE:
            result.append(c)
            consumed.add(i)
            continue
        neg_key = Constraint(c.expr.scale(-1), GE).key()
        by_key.setdefault(c.key(), c)
        partner = by_key.get(neg_key)
        if partner is not None and i not in consumed:
            result.append(Constraint(c.expr, EQ))
            consumed.add(i)
    for i, c in enumerate(normed):
        if i in consumed or c.rel != GE:
            continue
        eq_key = Constraint(c.expr, EQ).normalized().key()
        if any(r.rel == EQ and r.normalized().key() == eq_key for r in result):
            continue
        neg_key = Constraint(c.expr.scale(-1), GE).key()
        if neg_key in by_key:
            continue  # folded into an equality above
        result.append(c)
    return result


_CONST = "$const"


def _common_equalities(
    eqs_a: Sequence[Constraint], eqs_b: Sequence[Constraint]
) -> List[Constraint]:
    """The intersection of two affine equality spans.

    Each equality ``e == 0`` is a vector over (variables + constant); the
    equalities valid on the union of the two polyhedra include every
    linear combination lying in both row spaces -- exactly the affine-hull
    part a candidate-filter join cannot discover syntactically.
    """
    if not eqs_a or not eqs_b:
        return []
    rows_a = [_eq_row(c) for c in eqs_a]
    rows_b = [_eq_row(c) for c in eqs_b]
    columns = sorted(set().union(*rows_a, *rows_b))
    # Solve sum x_i a_i - sum z_j b_j = 0 per column; each null vector gives
    # a common equality sum x_i a_i.
    eq_rows = []
    for col in columns:
        row = {}
        for i, a in enumerate(rows_a):
            k = a.get(col)
            if k:
                row[f"x{i}"] = k
        for j, b in enumerate(rows_b):
            k = b.get(col)
            if k:
                row[f"z{j}"] = -k
        if row:
            eq_rows.append(row)
    unknowns = [f"x{i}" for i in range(len(rows_a))] + [
        f"z{j}" for j in range(len(rows_b))
    ]
    from repro.numeric.linalg import nullspace as _nullspace

    out: List[Constraint] = []
    for vec in _nullspace(eq_rows, unknowns):
        combo: Dict[str, Fraction] = {}
        for i, a in enumerate(rows_a):
            k = vec.get(f"x{i}", Fraction(0))
            if k:
                for col, val in a.items():
                    combo[col] = combo.get(col, Fraction(0)) + k * val
        const = combo.pop(_CONST, Fraction(0))
        expr = LinExpr(combo, const)
        if expr.coeffs:
            out.append(Constraint(expr, EQ).normalized())
    return out


def _eq_row(c: Constraint) -> Dict[str, Fraction]:
    row = dict(c.expr.coeffs)
    if c.expr.const != 0:
        row[_CONST] = c.expr.const
    return row


_TOP = Polyhedron(())
_BOTTOM = Polyhedron((), bottom=True)
