"""Numerical abstract domain substrate (APRON replacement).

This package provides the numeric layer the paper obtains from APRON:

- :mod:`repro.numeric.linexpr` -- linear expressions and constraints over
  named terms, with exact :class:`fractions.Fraction` arithmetic.
- :mod:`repro.numeric.simplex` -- an exact rational LP solver (primal
  simplex with Bland's rule) used for feasibility and entailment.
- :mod:`repro.numeric.polyhedra` -- a conjunction-of-linear-constraints
  domain ("polyhedra-lite") with meet, weak join, entailment, projection
  (Fourier-Motzkin), renaming, assignment and widening.
- :mod:`repro.numeric.intervals` -- a light interval domain used in tests
  and ablation benchmarks.
"""

from repro.numeric.linexpr import LinExpr, Constraint
from repro.numeric.polyhedra import Polyhedron
from repro.numeric.intervals import Interval, IntervalEnv

__all__ = [
    "LinExpr",
    "Constraint",
    "Polyhedron",
    "Interval",
    "IntervalEnv",
]
