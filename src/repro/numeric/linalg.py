"""Exact rational linear algebra over sparse dict-rows.

Shared by the AM multiset domain (row spaces of multiset equalities) and
the polyhedra join (affine-hull intersection).  Rows are dicts mapping
column names to Fractions; systems are homogeneous.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

Row = Dict[str, Fraction]


def rref(rows: List[Row], columns: List[str]) -> List[Row]:
    """Reduced row echelon form of homogeneous rows over ordered columns."""
    work = [dict(r) for r in rows]
    pivots: List[Tuple[int, str]] = []
    row_idx = 0
    for col in columns:
        pivot_row = None
        for r in range(row_idx, len(work)):
            if work[r].get(col, Fraction(0)) != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        work[row_idx], work[pivot_row] = work[pivot_row], work[row_idx]
        inv = Fraction(1) / work[row_idx][col]
        work[row_idx] = {c: k * inv for c, k in work[row_idx].items() if k != 0}
        for r in range(len(work)):
            if r == row_idx:
                continue
            factor = work[r].get(col, Fraction(0))
            if factor != 0:
                new = dict(work[r])
                for c, k in work[row_idx].items():
                    new[c] = new.get(c, Fraction(0)) - factor * k
                work[r] = {c: k for c, k in new.items() if k != 0}
        pivots.append((row_idx, col))
        row_idx += 1
    return [r for r in work[:row_idx] if r]


def reduce_against(row: Row, basis: List[Row], columns: List[str]) -> Row:
    """Reduce one row against an RREF basis; zero result means membership."""
    work = dict(row)
    for b in basis:
        lead = next((c for c in columns if b.get(c, Fraction(0)) != 0), None)
        if lead is None:
            continue
        factor = work.get(lead, Fraction(0)) / b[lead]
        if factor != 0:
            for c, k in b.items():
                work[c] = work.get(c, Fraction(0)) - factor * k
    return {c: k for c, k in work.items() if k != 0}




def nullspace(rows: List[Row], unknowns: List[str]) -> List[Row]:
    """Basis of the null space of a homogeneous system over ``unknowns``."""
    reduced = rref([dict(r) for r in rows], unknowns)
    pivot_cols: Dict[str, Row] = {}
    for r in reduced:
        lead = next((c for c in unknowns if r.get(c, Fraction(0)) != 0), None)
        if lead is not None:
            pivot_cols[lead] = r
    free = [c for c in unknowns if c not in pivot_cols]
    basis: List[Row] = []
    for f in free:
        vec: Row = {f: Fraction(1)}
        for lead, row in pivot_cols.items():
            k = row.get(f, Fraction(0))
            if k != 0:
                vec[lead] = -k
        basis.append(vec)
    return basis


