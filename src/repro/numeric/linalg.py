"""Exact rational linear algebra over sparse dict-rows.

Shared by the AM multiset domain (row spaces of multiset equalities) and
the polyhedra join (affine-hull intersection).  Rows are dicts mapping
column names to exact rationals (Fraction or int); systems are
homogeneous.

``rref`` runs fraction-free: each input row is scaled to coprime
integers (legal because the system is homogeneous -- scaling a row does
not change its span), elimination works on integer rows with a gcd
reduction after every combination, and pivot rows are divided down to a
unit lead only at the end.  The reduced row echelon form of a row space
is unique, so the result is the same canonical basis the naive
Fraction-by-Fraction elimination produces -- just without the millions
of intermediate Fraction allocations.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Tuple

Row = Dict[str, Fraction]


def _int_row(row: Row) -> Dict[str, int]:
    """Scale a homogeneous row to coprime integers, dropping zeros."""
    lcm = 1
    for k in row.values():
        d = k.denominator
        if d != 1:
            lcm = lcm * d // gcd(lcm, d)
    if lcm == 1:
        out = {c: k.numerator for c, k in row.items() if k}
    else:
        out = {}
        for c, k in row.items():
            if k:
                out[c] = k.numerator * (lcm // k.denominator)
    return _gcd_reduce(out)


def _gcd_reduce(row: Dict[str, int]) -> Dict[str, int]:
    g = 0
    for v in row.values():
        g = gcd(g, v)
        if g == 1:
            return row
    if g > 1:
        return {c: v // g for c, v in row.items()}
    return row


def rref(rows: List[Row], columns: List[str]) -> List[Row]:
    """Reduced row echelon form of homogeneous rows over ordered columns."""
    work = [r for r in (_int_row(dict(r)) for r in rows) if r]
    pivots: List[str] = []
    row_idx = 0
    for col in columns:
        pivot_row = None
        for r in range(row_idx, len(work)):
            if work[r].get(col):
                pivot_row = r
                break
        if pivot_row is None:
            continue
        work[row_idx], work[pivot_row] = work[pivot_row], work[row_idx]
        lead_row = work[row_idx]
        p = lead_row[col]
        for r in range(len(work)):
            if r == row_idx:
                continue
            f = work[r].get(col)
            if f:
                new = {c: k * p for c, k in work[r].items()}
                for c, k in lead_row.items():
                    cur = new.get(c)
                    nv = -f * k if cur is None else cur - f * k
                    if nv:
                        new[c] = nv
                    elif cur is not None:
                        del new[c]
                work[r] = _gcd_reduce(new)
        pivots.append(col)
        row_idx += 1
    out: List[Row] = []
    for i, col in enumerate(pivots):
        r = work[i]
        p = r[col]
        if p == 1:
            out.append(r)
        else:
            # Exact unit-lead normalization; Fraction(v, p) keeps the
            # denominator positive and reduces automatically.
            out.append({c: Fraction(v, p) for c, v in r.items()})
    return out


def _lead_of(row: Row, col_pos: Dict[str, int]):
    """The row's leading column (smallest in the column order), or None.

    Scans only the row's nonzero entries instead of the full column list.
    """
    lead = None
    best = -1
    for c in row:
        p = col_pos.get(c)
        if p is not None and (lead is None or p < best):
            lead = c
            best = p
    return lead


def reduce_against(row: Row, basis: List[Row], columns: List[str]) -> Row:
    """Reduce one row against an RREF basis; zero result means membership."""
    col_pos = {c: i for i, c in enumerate(columns)}
    work = dict(row)
    for b in basis:
        lead = _lead_of(b, col_pos)
        if lead is None:
            continue
        factor_raw = work.get(lead)
        if not factor_raw:
            continue
        pivot = b[lead]
        # RREF basis rows have a unit lead; divide exactly if not.
        factor = factor_raw if pivot == 1 else Fraction(factor_raw) / pivot
        for c, k in b.items():
            cur = work.get(c)
            work[c] = -factor * k if cur is None else cur - factor * k
    return {c: k for c, k in work.items() if k}


def nullspace(rows: List[Row], unknowns: List[str]) -> List[Row]:
    """Basis of the null space of a homogeneous system over ``unknowns``."""
    reduced = rref([dict(r) for r in rows], unknowns)
    col_pos = {c: i for i, c in enumerate(unknowns)}
    pivot_cols: Dict[str, Row] = {}
    for r in reduced:
        lead = _lead_of(r, col_pos)
        if lead is not None:
            pivot_cols[lead] = r
    free = [c for c in unknowns if c not in pivot_cols]
    basis: List[Row] = []
    for f in free:
        vec: Row = {f: Fraction(1)}
        for lead, row in pivot_cols.items():
            k = row.get(f)
            if k:
                vec[lead] = -k
        basis.append(vec)
    return basis
