"""Frontend edge cases the fuzzer's generator shakes out: negative
literals, empty blocks, discarded call results, shadowed locals, and the
pretty-printer round trip on handwritten programs."""

import pytest

from repro.lang import ast as A
from repro.lang.benchlib import benchmark_program
from repro.lang.cfg import build_icfg
from repro.lang.normalize import normalize_program
from repro.lang.parser import ParseError, parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import TypeError_, typecheck_program
from repro.concrete.interp import Interpreter
from repro.concrete.heap import from_cells, to_cells


def _roundtrip(source: str) -> A.Program:
    program = typecheck_program(parse_program(source))
    reparsed = typecheck_program(parse_program(pretty_program(program)))
    assert reparsed == program
    return program


def test_negative_literals_fold_to_one_intlit():
    program = parse_program(
        "proc f() returns (s: int) { s = -3; s = (s * -2) + -1; }"
    )
    body = program.procedures[0].body
    assert body[0].value == A.IntLit(-3)
    _roundtrip("proc f() returns (s: int) { s = -3; s = (s * -2) + -1; }")


def test_unary_minus_on_variables_keeps_zero_minus_form():
    program = parse_program("proc f(n: int) returns (s: int) { s = -n; }")
    assert program.procedures[0].body[0].value == A.BinOp(
        "-", A.IntLit(0), A.Var("n")
    )


def test_empty_blocks_parse_and_roundtrip():
    src = """
    proc f(x: list) returns () {
      if (x == NULL) {
      } else {
      }
      while (x != NULL) {
        x = x->next;
      }
    }
    """
    program = _roundtrip(src)
    icfg = build_icfg(normalize_program(program))
    interp = Interpreter(icfg)
    assert interp.run("f", [to_cells([1, 2])]) == []


def test_discarded_call_results_both_spellings():
    src = """
    proc inc(n: int) returns (m: int) { m = n + 1; }
    proc main(n: int) returns (s: int) {
      inc(n);
      () = inc(n);
      s = inc(n);
    }
    """
    program = _roundtrip(src)
    main = program.proc("main")
    assert main.body[0].targets == ()
    assert main.body[1].targets == ()
    icfg = build_icfg(normalize_program(program))
    assert Interpreter(icfg).run("main", [41]) == [42]


def test_bare_call_statement_is_not_confused_with_assignment():
    src = """
    proc touch(x: list) returns () { if (x != NULL) { x->data = 1; } }
    proc main(x: list) returns (r: list) {
      touch(x);
      r = x;
    }
    """
    program = _roundtrip(src)
    icfg = build_icfg(normalize_program(program))
    out = Interpreter(icfg).run("main", [to_cells([5, 6])])
    assert from_cells(out[0]) == [1, 6]


def test_mismatched_nonempty_call_targets_still_rejected():
    src = """
    proc two(n: int) returns (a: int, b: int) { a = n; b = n; }
    proc main(n: int) returns (s: int) { s = two(n); }
    """
    with pytest.raises(TypeError_):
        typecheck_program(parse_program(src))


def test_shadowed_locals_are_rejected_cleanly():
    src = """
    proc f(x: list) returns (r: list) {
      local x: list;
      r = x;
    }
    """
    with pytest.raises(TypeError_) as exc:
        typecheck_program(parse_program(src))
    assert "duplicate variable" in str(exc.value)


def test_same_local_name_in_different_procs_is_fine():
    src = """
    proc f(n: int) returns (s: int) { local t: int; t = n; s = t; }
    proc g(n: int) returns (s: int) { local t: int; t = n * 2; s = t; }
    """
    program = _roundtrip(src)
    icfg = build_icfg(normalize_program(program))
    interp = Interpreter(icfg)
    assert interp.run("f", [3]) == [3]
    assert interp.run("g", [3]) == [6]


def test_procedure_line_numbers_do_not_affect_ast_equality():
    a = parse_program("proc f() returns (s: int) { s = 1; }")
    b = parse_program("\n\n\nproc f() returns (s: int) {\n s = 1; }")
    assert a == b


def test_benchmark_program_roundtrips():
    program = typecheck_program(benchmark_program())
    reparsed = typecheck_program(parse_program(pretty_program(program)))
    assert reparsed == program
