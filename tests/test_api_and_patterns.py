"""Tests for the public API facade, pattern machinery, and heap sets."""

import pytest

from repro import Analyzer, choose_patterns
from repro.datawords.patterns import (
    GuardInstance,
    PATTERNS,
    PatternSet,
    closure,
    pattern_set,
)
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.lang.benchlib import benchmark_program
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL, HeapGraph
from repro.shape.heap_set import HeapSet


@pytest.fixture(scope="module")
def analyzer():
    return Analyzer(benchmark_program())


class TestPatternRegistry:
    def test_aliases(self):
        ps = pattern_set("P=", "P1", "P2")
        assert "EQ2" in ps and "ALL1" in ps and "ORD2" in ps

    def test_closure_pulls_helpers(self):
        ps = pattern_set("P=")
        assert "SUF2" in ps and "BEF2" in ps

    def test_closure_rejects_unknown(self):
        with pytest.raises(KeyError):
            closure(["NOPE"])

    def test_instances_enumeration(self):
        ps = PatternSet({"ALL1"})
        gis = ps.instances(["a", "b"])
        assert GuardInstance("ALL1", ("a",)) in gis
        assert GuardInstance("ALL1", ("b",)) in gis

    def test_binary_instances_ordered_pairs(self):
        ps = PatternSet({"EQ2"})
        gis = [g for g in ps.instances(["a", "b"]) if g.pattern_name == "EQ2"]
        assert len(gis) == 2

    def test_guard_poly_membership_bounds(self):
        gi = GuardInstance("ALL1", ("w",))
        poly = gi.guard_poly()
        from repro.datawords import terms as T

        assert poly.entails(Constraint.ge(LinExpr.var("y1"), 1))
        assert poly.entails(
            Constraint.le(
                LinExpr.var("y1"), LinExpr.var(T.length("w")) - 1
            )
        )

    def test_bef2_guard_pins_position(self):
        from repro.datawords import terms as T

        gi = GuardInstance("BEF2", ("a", "b"))
        poly = gi.guard_poly()
        assert poly.entails(
            Constraint.eq(
                LinExpr.var(gi.posvars()[0]),
                LinExpr.var(T.length("b")) - LinExpr.var(T.length("a")),
            )
        )

    def test_every_pattern_has_description(self):
        for name, pattern in PATTERNS.items():
            assert pattern.description
            assert pattern.name == name


class TestChoosePatterns:
    def test_no_loop_gets_eq_only(self, analyzer):
        ps = choose_patterns(analyzer.icfg, "addfst")
        assert "EQ2" in ps and "ALL1" not in ps

    def test_single_loop_gets_p1(self, analyzer):
        ps = choose_patterns(analyzer.icfg, "init")
        assert "ALL1" in ps and "ORD2" not in ps

    def test_nested_loops_get_p2(self, analyzer):
        ps = choose_patterns(analyzer.icfg, "bubblesort")
        assert "ORD2" in ps

    def test_double_recursion_gets_p2(self, analyzer):
        ps = choose_patterns(analyzer.icfg, "quicksort")
        assert "ORD2" in ps


class TestHeapSet:
    def setup_method(self):
        self.domain = UniversalDomain(pattern_set("P1"))

    def heap(self, hd_value):
        from repro.datawords import terms as T

        g = HeapGraph(["a"], {"a": NULL}, {"x": "a"})
        E = Polyhedron.of(
            Constraint.eq(LinExpr.var(T.hd("a")), hd_value)
        )
        return AbstractHeap(g, UniversalValue(E))

    def test_join_merges_isomorphic(self):
        hs = HeapSet.of(self.domain, [self.heap(1), self.heap(2)])
        assert len(hs) == 1

    def test_join_keeps_distinct_graphs(self):
        g2 = HeapGraph.empty(["x"])
        other = AbstractHeap(g2, self.domain.top())
        hs = HeapSet.of(self.domain, [self.heap(1), other])
        assert len(hs) == 2

    def test_leq(self):
        small = HeapSet.of(self.domain, [self.heap(1)])
        big = HeapSet.of(self.domain, [self.heap(1), self.heap(2)])
        assert small.leq(big, self.domain)
        assert not big.leq(small, self.domain)

    def test_bottom(self):
        assert HeapSet.bottom().is_bottom()
        hs = HeapSet.of(self.domain, [self.heap(0)])
        assert hs.join(HeapSet.bottom(), self.domain).leq(hs, self.domain)

    def test_map_filters_bottom(self):
        hs = HeapSet.of(self.domain, [self.heap(0)])
        out = hs.map(self.domain, lambda h: [])
        assert out.is_bottom()


class TestAnalyzerFacade:
    def test_from_source_roundtrip(self):
        a = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        result = a.analyze("id", domain="au")
        assert result.proc == "id"
        assert result.summaries
        assert "id" in result.describe()

    def test_unknown_domain(self):
        a = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        with pytest.raises(ValueError):
            a.analyze("id", domain="zz")

    def test_analyze_strengthened_runs_both(self):
        a = Analyzer.from_source(
            """
            proc id(x: list) returns (r: list) { r = x; }
            proc main(x: list) returns (r: list) { r = id(x); }
            """
        )
        result = a.analyze_strengthened("main")
        assert result.domain_name == "au"
        assert result.am_result.domain_name == "am"

    def test_exit_heaps_accessor(self):
        a = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        result = a.analyze("id", domain="am")
        assert len(result.exit_heaps()) >= 1
