"""Unit and property tests for the polyhedra-lite domain."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron


def v(name):
    return LinExpr.var(name)


def poly(*cons):
    return Polyhedron(cons)


class TestLatticeBasics:
    def test_top_bottom(self):
        assert Polyhedron.top().is_top()
        assert Polyhedron.bottom().is_bottom()
        assert not Polyhedron.top().is_bottom()

    def test_syntactic_contradiction_is_bottom(self):
        p = poly(Constraint.ge(LinExpr.const_expr(-1)))
        assert p.is_bottom()

    def test_semantic_contradiction_is_bottom(self):
        p = poly(Constraint.ge(v("x"), 1), Constraint.le(v("x"), 0))
        assert p.is_bottom()

    def test_meet(self):
        p = poly(Constraint.ge(v("x"), 0)).meet(poly(Constraint.le(v("x"), 5)))
        assert p.entails(Constraint.ge(v("x"), 0))
        assert p.entails(Constraint.le(v("x"), 5))

    def test_leq(self):
        small = poly(Constraint.ge(v("x"), 2))
        big = poly(Constraint.ge(v("x"), 0))
        assert small.leq(big)
        assert not big.leq(small)

    def test_bottom_leq_everything(self):
        assert Polyhedron.bottom().leq(poly(Constraint.eq(v("x"), 1)))

    def test_entails_cache_consistency(self):
        p = poly(Constraint.ge(v("x"), 1))
        c = Constraint.ge(v("x"), 0)
        assert p.entails(c)
        assert p.entails(c)  # cached path

    def test_dedup_of_scaled_constraints(self):
        p = poly(Constraint.ge(v("x"), 1), Constraint.ge(v("x").scale(2), 2))
        assert len(p.constraints) == 1


class TestJoin:
    def test_join_of_points_gives_segment(self):
        p0 = poly(Constraint.eq(v("x"), 0))
        p1 = poly(Constraint.eq(v("x"), 1))
        j = p0.join(p1)
        assert j.entails(Constraint.ge(v("x"), 0))
        assert j.entails(Constraint.le(v("x"), 1))
        assert not j.entails(Constraint.eq(v("x"), 0))

    def test_join_preserves_common_relation(self):
        p0 = poly(Constraint.eq(v("y"), v("x")))
        p1 = poly(Constraint.eq(v("y"), v("x") + 1))
        j = p0.join(p1)
        assert j.entails(Constraint.ge(v("y"), v("x")))
        assert j.entails(Constraint.le(v("y"), v("x") + 1))

    def test_join_with_bottom(self):
        p = poly(Constraint.eq(v("x"), 3))
        assert p.join(Polyhedron.bottom()).entails(Constraint.eq(v("x"), 3))
        assert Polyhedron.bottom().join(p).entails(Constraint.eq(v("x"), 3))

    def test_join_is_upper_bound(self):
        a = poly(Constraint.ge(v("x"), 0), Constraint.le(v("x"), 1))
        b = poly(Constraint.ge(v("x"), 5), Constraint.le(v("x"), 6))
        j = a.join(b)
        assert a.leq(j)
        assert b.leq(j)


class TestWiden:
    def test_widen_drops_unstable_bound(self):
        a = poly(Constraint.ge(v("i"), 0), Constraint.le(v("i"), 1))
        b = poly(Constraint.ge(v("i"), 0), Constraint.le(v("i"), 2))
        w = a.widen(b)
        assert w.entails(Constraint.ge(v("i"), 0))
        assert not w.entails(Constraint.le(v("i"), 100))

    def test_widen_keeps_stable_relation(self):
        a = poly(Constraint.le(v("i"), v("n")), Constraint.le(v("i"), 1))
        b = poly(Constraint.le(v("i"), v("n")), Constraint.le(v("i"), 2))
        w = a.widen(b)
        assert w.entails(Constraint.le(v("i"), v("n")))

    def test_widen_is_upper_bound_of_both(self):
        a = poly(Constraint.eq(v("x"), 0))
        b = poly(Constraint.ge(v("x"), 0), Constraint.le(v("x"), 1))
        w = a.widen(b)
        assert a.leq(w)
        assert b.leq(w)

    def test_widen_keeps_new_equalities_entailed_by_old(self):
        a = poly(Constraint.eq(v("x"), v("y")), Constraint.le(v("x"), 1))
        b = poly(Constraint.eq(v("x"), v("y")))
        w = a.widen(b)
        assert w.entails(Constraint.eq(v("x"), v("y")))


class TestProject:
    def test_project_via_equality(self):
        p = poly(Constraint.eq(v("y"), v("x") + 1), Constraint.ge(v("x"), 0))
        q = p.project(["x"])
        assert "x" not in q.support()
        assert q.entails(Constraint.ge(v("y"), 1))

    def test_project_fourier_motzkin(self):
        p = poly(Constraint.le(v("x"), v("y")), Constraint.le(v("y"), v("z")))
        q = p.project(["y"])
        assert q.entails(Constraint.le(v("x"), v("z")))
        assert "y" not in q.support()

    def test_project_missing_variable_is_noop(self):
        p = poly(Constraint.ge(v("x"), 0))
        assert p.project(["zz"]) is p

    def test_project_of_bottom(self):
        assert Polyhedron.bottom().project(["x"]).is_bottom()

    def test_project_all(self):
        p = poly(Constraint.ge(v("x"), 0), Constraint.le(v("x"), v("y")))
        q = p.project(["x", "y"])
        assert q.is_top()

    def test_restrict_to(self):
        p = poly(Constraint.eq(v("a"), v("b")), Constraint.eq(v("b"), v("c")))
        q = p.restrict_to(["a", "c"])
        assert q.support() <= {"a", "c"}
        assert q.entails(Constraint.eq(v("a"), v("c")))


class TestAssignRename:
    def test_assign_constant(self):
        p = Polyhedron.top().assign("x", LinExpr.const_expr(5))
        assert p.entails(Constraint.eq(v("x"), 5))

    def test_assign_increment(self):
        p = poly(Constraint.eq(v("i"), 3)).assign("i", v("i") + 1)
        assert p.entails(Constraint.eq(v("i"), 4))

    def test_assign_forgets_old_value(self):
        p = poly(Constraint.eq(v("x"), 1), Constraint.eq(v("y"), v("x")))
        q = p.assign("x", LinExpr.const_expr(9))
        assert q.entails(Constraint.eq(v("x"), 9))
        assert q.entails(Constraint.eq(v("y"), 1))

    def test_assign_swap_style(self):
        p = poly(Constraint.eq(v("x"), v("y") + 2)).assign("x", v("x") - v("y"))
        assert p.entails(Constraint.eq(v("x"), 2))

    def test_rename(self):
        p = poly(Constraint.eq(v("x"), 1)).rename({"x": "z"})
        assert p.entails(Constraint.eq(v("z"), 1))
        assert "x" not in p.support()

    def test_substitute(self):
        p = poly(Constraint.ge(v("x"), 0)).substitute({"x": v("a") - v("b")})
        assert p.entails(Constraint.ge(v("a"), v("b")))

    def test_minimized_removes_redundant(self):
        p = poly(Constraint.ge(v("x"), 2), Constraint.ge(v("x"), 0))
        q = p.minimized()
        assert len(q.constraints) == 1
        assert q.entails(Constraint.ge(v("x"), 2))


coeff_st = st.integers(min_value=-3, max_value=3)
const_st = st.integers(min_value=-5, max_value=5)


@st.composite
def constraint_st(draw):
    cx = draw(coeff_st)
    cy = draw(coeff_st)
    c = draw(const_st)
    rel = draw(st.sampled_from(["ge", "eq"]))
    expr = LinExpr({"x": cx, "y": cy}, c)
    return Constraint.ge(expr) if rel == "ge" else Constraint.eq(expr)


@st.composite
def poly_st(draw):
    cons = draw(st.lists(constraint_st(), min_size=0, max_size=4))
    return Polyhedron(cons)


points_st = st.fixed_dictionaries(
    {"x": st.integers(-10, 10).map(Fraction), "y": st.integers(-10, 10).map(Fraction)}
)


@settings(max_examples=40, deadline=None)
@given(poly_st(), poly_st(), points_st)
def test_property_join_soundness(a, b, point):
    """A point in a or b is in join(a, b)."""
    j = a.join(b)
    if a.satisfies(point) or b.satisfies(point):
        assert j.satisfies(point)


@settings(max_examples=40, deadline=None)
@given(poly_st(), poly_st(), points_st)
def test_property_meet_exactness(a, b, point):
    m = a.meet(b)
    assert m.satisfies(point) == (a.satisfies(point) and b.satisfies(point))


@settings(max_examples=40, deadline=None)
@given(poly_st(), poly_st(), points_st)
def test_property_widen_upper_bound(a, b, point):
    w = a.widen(b)
    if a.satisfies(point) or b.satisfies(point):
        assert w.satisfies(point)


@settings(max_examples=40, deadline=None)
@given(poly_st(), points_st)
def test_property_project_soundness(a, point):
    q = a.project(["y"])
    if a.satisfies(point):
        assert q.satisfies(point)


@settings(max_examples=30, deadline=None)
@given(poly_st(), poly_st())
def test_property_leq_reflexive_transitive_bits(a, b):
    assert a.leq(a)
    j = a.join(b)
    assert a.leq(j) and b.leq(j)
