"""Tests of the doubly-linked-list subsystem (DESIGN.md section 15).

Five layers, mirroring the stack the DLL wiring runs through:

- **lang**: ``prev`` parses, pretty-prints, round-trips and typechecks
  (including the negative cases), and the CFG keeps the prev ops;
- **concrete**: ``to_dll_cells`` builds well-formed lists and
  ``dll_violations`` is exactly the ``n.prev.next == n`` oracle;
- **shape**: prev-aware analysis carries the segment attributes and
  :func:`repro.shape.dll.classify` proves the suite idioms consistent,
  while prev-free programs never grow a DLL attribute;
- **corpus**: every safe DLL benchmark checks finding-free and every
  buggy variant is flagged with exactly the recorded findings;
- **identity**: the committed prev-free summary-hash baseline
  regenerates bit-identically (the DLL wiring is invisible to SLL
  programs), and the fuzz corpus carries DLL replay seeds.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.checker import CheckOptions, check_source
from repro.concrete.heap import (
    Cell,
    dll_violations,
    from_cells,
    to_cells,
    to_dll_cells,
)
from repro.core.api import Analyzer
from repro.lang.ast import uses_prev
from repro.lang.cfg import icfg_uses_prev
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import TypeError_, typecheck_program
from repro.shape import dll as dll_rules
from repro.shape.graph import NULL, HeapGraph

ROOT = Path(__file__).parent.parent
CORPUS = Path(__file__).parent / "corpus"
DLL_SAFE = CORPUS / "dll" / "safe"
DLL_BUGGY = CORPUS / "dll" / "buggy"

PUSH_FRONT = """\
proc main(x: list, v: int) returns (r: list) {
  local t: list;
  t = new;
  t->data = v;
  t->next = x;
  t->prev = NULL;
  if (x != NULL) {
    x->prev = t;
  }
  r = t;
}
"""

SLL_PUSH = """\
proc main(x: list, v: int) returns (r: list) {
  local t: list;
  t = new;
  t->data = v;
  t->next = x;
  r = t;
}
"""


class TestLangPrev:
    def test_parse_pretty_roundtrip(self):
        program = parse_program(PUSH_FRONT)
        printed = pretty_program(program)
        assert "t->prev = NULL;" in printed
        assert "x->prev = t;" in printed
        again = pretty_program(parse_program(printed))
        assert printed == again

    def test_prev_load_parses_and_typechecks(self):
        src = (
            "proc main(x: list) returns (r: list) {\n"
            "  r = x->prev;\n"
            "}\n"
        )
        program = typecheck_program(parse_program(src))
        assert uses_prev(normalize_program(program))

    def test_prev_on_int_rejected(self):
        src = (
            "proc main(n: int) returns (r: list) {\n"
            "  r = n->prev;\n"
            "}\n"
        )
        with pytest.raises(TypeError_, match="not a list"):
            typecheck_program(parse_program(src))

    def test_prev_store_of_int_rejected(self):
        src = (
            "proc main(x: list, n: int) returns (r: list) {\n"
            "  x->prev = n;\n"
            "  r = x;\n"
            "}\n"
        )
        with pytest.raises(TypeError_):
            typecheck_program(parse_program(src))

    def test_uses_prev_detection(self):
        dll = normalize_program(typecheck_program(parse_program(PUSH_FRONT)))
        sll = normalize_program(typecheck_program(parse_program(SLL_PUSH)))
        assert uses_prev(dll)
        assert not uses_prev(sll)

    def test_cfg_keeps_prev_ops(self):
        analyzer = Analyzer.from_source(PUSH_FRONT)
        assert icfg_uses_prev(analyzer.icfg)
        analyzer = Analyzer.from_source(SLL_PUSH)
        assert not icfg_uses_prev(analyzer.icfg)


class TestConcreteDll:
    def test_to_dll_cells_is_well_formed(self):
        head = to_dll_cells([1, 2, 3])
        assert from_cells(head) == [1, 2, 3]
        assert head.prev is None
        assert dll_violations(head) == []

    def test_to_cells_has_no_back_pointers(self):
        head = to_cells([1, 2])
        assert head.prev is None and head.next.prev is None

    def test_interior_mismatch_is_violation(self):
        head = to_dll_cells([1, 2, 3])
        head.next.prev = head.next.next  # break the second cell's back link
        assert dll_violations(head)

    def test_mid_list_head_is_not_a_violation(self):
        # A pointer aimed at an interior cell sees head.prev != None, but
        # the back pointer matches its forward link: still well-formed.
        head = to_dll_cells([1, 2, 3])
        assert dll_violations(head.next) == []

    def test_dangling_head_prev_is_violation(self):
        head = to_dll_cells([1, 2])
        head.prev = Cell(data=9)  # prev.next is None, not head
        assert dll_violations(head)

    def test_cycle_raises_instead_of_looping(self):
        head = to_dll_cells([1, 2])
        head.next.next = head
        with pytest.raises(ValueError, match="cyclic"):
            dll_violations(head)


class TestShapeClassify:
    def _summaries(self, source, proc="main", domain="am"):
        analyzer = Analyzer.from_source(source)
        result = analyzer.analyze(proc, domain=domain, max_steps=400_000)
        assert not result.diagnostics
        return result

    def test_prev_free_program_has_no_dll_attrs(self):
        result = self._summaries(SLL_PUSH)
        for entry, summary in result.summaries:
            assert not entry.graph.has_dll_attrs()
            for heap in summary:
                assert not heap.graph.has_dll_attrs()

    def test_push_front_output_classifies_consistent(self):
        result = self._summaries(PUSH_FRONT)
        assert result.summaries
        for _, summary in result.summaries:
            for heap in summary:
                verdict = dll_rules.classify_heap(heap, result.domain, ["r"])
                assert verdict == dll_rules.CONSISTENT, heap.graph

    def test_classify_broken_on_provable_mismatch(self):
        # prevof[b] = c, but c's forward link bypasses b: provably broken.
        graph = HeapGraph(
            nodes=["a", "b", "c"],
            succ={"a": "b", "b": NULL, "c": NULL},
            labels={"x": "a"},
            prevof={"a": NULL, "b": "c"},
            dllseg=["a", "b", "c"],
        )
        def entails_len1(node):
            return True
        assert dll_rules.classify(graph, ["x"], entails_len1) == dll_rules.BROKEN

    def test_classify_unknown_without_attributes(self):
        graph = HeapGraph(
            nodes=["a"], succ={"a": NULL}, labels={"x": "a"}
        )
        def entails_len1(node):
            return True
        assert dll_rules.classify(graph, ["x"], entails_len1) == dll_rules.UNKNOWN


def _finding_tuples(report):
    return [
        {
            "ruleId": f.rule_id,
            "verdict": f.verdict,
            "procedure": f.procedure,
            "line": f.line,
        }
        for f in report.findings
    ]


@pytest.mark.parametrize(
    "path", sorted(DLL_SAFE.glob("*.lisl")), ids=lambda p: p.stem
)
def test_safe_dll_corpus_is_finding_free(path):
    report = check_source(path.read_text(), CheckOptions(), path=str(path))
    assert report.findings == []
    assert report.ok


@pytest.mark.parametrize(
    "path", sorted(DLL_BUGGY.glob("*.lisl")), ids=lambda p: p.stem
)
def test_buggy_dll_corpus_matches_golden(path):
    report = check_source(path.read_text(), CheckOptions(), path=str(path))
    golden = json.loads(path.with_suffix(".expected.json").read_text())
    assert _finding_tuples(report) == golden["findings"]
    assert report.findings  # every buggy entry is flagged


def test_dll_corpus_is_populated():
    assert len(list(DLL_SAFE.glob("*.lisl"))) >= 5
    assert len(list(DLL_BUGGY.glob("*.lisl"))) >= 2


def test_fuzz_corpus_carries_dll_seeds():
    # Replayed green by tests/test_corpus_replay.py with the rest of the
    # corpus; here we only pin their existence and that they are DLL.
    seeds = sorted(CORPUS.glob("dll_gen_seed*.lisl"))
    assert len(seeds) >= 3
    for path in seeds:
        norm = normalize_program(typecheck_program(parse_program(path.read_text())))
        assert uses_prev(norm), path


class TestSllIdentity:
    def test_baseline_summary_hashes_are_bit_identical(self):
        """The DLL wiring must be invisible to prev-free programs.

        Regenerates the (graph_hash, heapset_hash) rows of every Table 1
        benchmark and prev-free corpus entry and compares them with the
        committed pre-DLL baseline.  An intentional representation
        change must rerun ``tools/gen_sll_baseline.py`` and say so.
        """
        sys.path.insert(0, str(ROOT / "tools"))
        try:
            from gen_sll_baseline import build_baseline
        finally:
            sys.path.pop(0)
        committed = json.loads(
            (Path(__file__).parent / "baseline_summary_hashes.json").read_text()
        )
        fresh = build_baseline()
        assert fresh["benchmarks"] == committed["benchmarks"]
        assert fresh["corpus"] == committed["corpus"]
