"""Every checked-in corpus entry must replay green: entries are shrunk
reproducers of past failures (plus handcrafted sentinels for the unfold#/
fold# suspects), so a finding here is a regression."""

from pathlib import Path

import pytest

from repro.fuzz.__main__ import load_corpus_entry
from repro.fuzz.oracle import Oracle, OracleConfig

CORPUS = Path(__file__).parent / "corpus"

# entries whose AU analysis is heavyweight run in the slow lane only
SLOW_ENTRIES = {"gen_seed17.lisl"}


def _entries():
    params = []
    for path in sorted(CORPUS.glob("*.lisl")):
        marks = [pytest.mark.slow] if path.name in SLOW_ENTRIES else []
        params.append(pytest.param(path, marks=marks, id=path.name))
    return params


def test_corpus_is_not_empty():
    assert list(CORPUS.glob("*.lisl")), "seed corpus is missing"


@pytest.mark.parametrize("path", _entries())
def test_corpus_entry_replays_green(path):
    entry = load_corpus_entry(path)
    assert entry.root, f"{path} lacks a root header"
    assert entry.inputs, f"{path} records no inputs"
    oracle = Oracle(OracleConfig(rounds=4))
    findings = oracle.check_source(entry.source, entry.root, entry.inputs)
    assert findings == [], [f.describe() for f in findings]
