"""Frozen inventories of public diagnostic rule ids.

Rule ids are a public contract (golden corpora, SARIF consumers, service
telemetry, client retry loops): additions are fine, renames and removals
are breaking.  Update these sets consciously.

Two inventories live here — the checker's finding rules
(``repro.checker.findings.ALL_RULE_IDS``, unchanged since the PR 5/6
goldens froze them) and the service/gateway tier's diagnostics rules
(``repro.service.diagnostics.SERVICE_RULE_IDS``, which grew the shared
``queue.shed`` admission rule and the ``gateway.*`` family when the
multi-tenant gateway landed).
"""

from repro.checker.findings import ALL_RULE_IDS
from repro.service import diagnostics as D


class TestCheckerRuleInventory:
    def test_rule_inventory_is_frozen(self):
        assert set(ALL_RULE_IDS) == {
            "lint.use-before-init",
            "lint.dead-store",
            "lint.unreachable",
            "lint.null-deref",
            "lint.missing-return",
            "lint.unused-local",
            "lint.unused-param",
            "safety.null-deref",
            "safety.leak",
            "safety.acyclic",
            "safety.termination",
            # Grew with the doubly-linked-list subsystem: back-pointer
            # consistency of output lists (DESIGN.md section 15).
            "safety.dll-consistent",
            "frontend.parse-error",
            "frontend.type-error",
            "checker.incomplete",
        }


class TestServiceRuleInventory:
    def test_rule_inventory_is_frozen(self):
        # ``budget`` is a prefix family (suffixed by kind at runtime);
        # ``queue.shed`` is shared by the daemon's global queue and the
        # gateway's per-tenant admission control.
        assert set(D.SERVICE_RULE_IDS) == {
            "assertion",
            "budget",
            "equivalence",
            "worker.crashed",
            "worker.failed",
            "queue.shed",
            "gateway.deadline",
            "gateway.session-evicted",
            "gateway.draining",
            "frontend.parse-error",
            "frontend.type-error",
        }

    def test_queue_shed_alias_is_stable(self):
        # Pre-gateway imports keyed on RULE_QUEUE_REJECTED; the alias
        # must keep resolving to the shared shed rule.
        assert D.RULE_QUEUE_REJECTED == D.RULE_QUEUE_SHED == "queue.shed"

    def test_no_overlap_between_tiers(self):
        overlap = set(ALL_RULE_IDS) & set(D.SERVICE_RULE_IDS) - {
            "frontend.parse-error",
            "frontend.type-error",  # the shared frontend family
        }
        assert not overlap
