"""Unit tests for local heaps, entry snapshots and composition (paper §4)."""

import pytest

from repro.core.localheap import (
    CutpointError,
    build_call_entry,
    compose_return,
    restrict_summary_exit,
)
from repro.datawords import terms as T
from repro.datawords.patterns import pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.lang.cfg import OpCall, build_cfg
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL, HeapGraph

AU = UniversalDomain(pattern_set("P="))


def v(name):
    return LinExpr.var(name)


def callee_cfg(source, name):
    program = normalize_program(typecheck_program(parse_program(source)))
    return build_cfg(program.proc(name))


IDENTITY = "proc id(x: list) returns (r: list) { r = x; }"
TOUCH = (
    "proc touch(x: list) returns (r: list) {"
    " r = x; if (x != NULL) { x->data = 1; } }"
)
SHIFT = (
    "proc shift(x: list) returns (r: list) {"
    " if (x == NULL) { r = NULL; } else { r = x->next; x = NULL; } }"
)


def caller_heap():
    """Caller: a -> cell A; unrelated b -> cell B; data var d."""
    g = HeapGraph(
        ["A", "B"], {"A": NULL, "B": NULL}, {"a": "A", "b": "B"}
    )
    E = Polyhedron.of(
        Constraint.eq(v(T.hd("A")), v("d")),
        Constraint.eq(v(T.hd("B")), 9),
    )
    return AbstractHeap(g, UniversalValue(E))


class TestBuildCallEntry:
    def test_entry_has_formals_and_snapshot(self):
        cfg = callee_cfg(IDENTITY, "id")
        op = OpCall(("out",), "id", ("a",))
        info = build_call_entry(AU, caller_heap(), cfg, op)
        g = info.entry_heap.graph
        assert g.node_of("x") != NULL
        assert g.node_of(T.entry_copy("x")) != NULL
        assert g.node_of("x") != g.node_of(T.entry_copy("x"))

    def test_entry_value_is_localized(self):
        cfg = callee_cfg(IDENTITY, "id")
        op = OpCall(("out",), "id", ("a",))
        info = build_call_entry(AU, caller_heap(), cfg, op)
        # B's facts and the caller data var are projected away
        support = info.entry_heap.value.E.support()
        assert not any("B" in t for t in support)
        assert "d" not in support

    def test_entry_snapshot_equalities(self):
        cfg = callee_cfg(IDENTITY, "id")
        op = OpCall(("out",), "id", ("a",))
        info = build_call_entry(AU, caller_heap(), cfg, op)
        g = info.entry_heap.graph
        n, s = g.node_of("x"), g.node_of(T.entry_copy("x"))
        E = info.entry_heap.value.E
        assert E.entails(Constraint.eq(v(T.hd(n)), v(T.hd(s))))
        assert E.entails(Constraint.eq(v(T.length(n)), v(T.length(s))))

    def test_null_actual(self):
        cfg = callee_cfg(IDENTITY, "id")
        g = HeapGraph.empty(["a"])
        heap = AbstractHeap(g, AU.top())
        op = OpCall(("out",), "id", ("a",))
        info = build_call_entry(AU, heap, cfg, op)
        assert info.entry_heap.graph.node_of("x") == NULL
        assert info.local_nodes == []

    def test_cutpoint_mid_list_label(self):
        # caller variable labels a non-entry local node: cutpoint.
        g = HeapGraph(
            ["A", "B"], {"A": "B", "B": NULL}, {"a": "A", "mid": "B"}
        )
        heap = AbstractHeap(g, AU.top())
        cfg = callee_cfg(IDENTITY, "id")
        op = OpCall(("out",), "id", ("a",))
        with pytest.raises(CutpointError):
            build_call_entry(AU, heap, cfg, op)

    def test_external_ref_to_entry_ok_when_formal_kept(self):
        # p -> A (entry node of actual a): allowed, 'touch' keeps x.
        g = HeapGraph(
            ["P", "A"], {"P": "A", "A": NULL}, {"p": "P", "a": "A"}
        )
        heap = AbstractHeap(g, AU.top())
        cfg = callee_cfg(TOUCH, "touch")
        op = OpCall(("out",), "touch", ("a",))
        info = build_call_entry(AU, heap, cfg, op)
        assert info.reattach["x"]

    def test_external_ref_rejected_when_formal_reassigned(self):
        # Un-normalized CFG: normalize_program renames assigned formals
        # away, so only a raw CFG still reassigns x -- and a raw
        # reassignment must be rejected at call time (the return
        # composition could not track the entry cell).
        g = HeapGraph(
            ["P", "A"], {"P": "A", "A": NULL}, {"p": "P", "a": "A"}
        )
        heap = AbstractHeap(g, AU.top())
        program = typecheck_program(parse_program(SHIFT))
        cfg = build_cfg(program.proc("shift"))
        op = OpCall(("out",), "shift", ("a",))
        with pytest.raises(CutpointError):
            build_call_entry(AU, heap, cfg, op)

    def test_normalized_reassigning_formal_is_accepted(self):
        # After normalization the same callee no longer reassigns x, so
        # the external reference re-attaches instead of being rejected.
        g = HeapGraph(
            ["P", "A"], {"P": "A", "A": NULL}, {"p": "P", "a": "A"}
        )
        heap = AbstractHeap(g, AU.top())
        cfg = callee_cfg(SHIFT, "shift")
        op = OpCall(("out",), "shift", ("a",))
        info = build_call_entry(AU, heap, cfg, op)
        assert info.reattach["x"]


class TestCompose:
    def test_identity_roundtrip(self):
        cfg = callee_cfg(IDENTITY, "id")
        op = OpCall(("out",), "id", ("a",))
        heap = caller_heap()
        info = build_call_entry(AU, heap, cfg, op)
        # Fake an identity summary: exit = entry with r labeling x's node.
        exit_graph = info.entry_heap.graph.with_label(
            "r", info.entry_heap.graph.node_of("x")
        )
        exit_heap = restrict_summary_exit(
            AU, AbstractHeap(exit_graph, info.entry_heap.value), cfg
        )
        composed = compose_return(AU, heap, exit_heap, cfg, op, info)
        assert composed is not None
        out_node = composed.graph.node_of("out")
        assert out_node != NULL
        # the head value flows back: hd(out) == d held by the caller
        assert composed.value.E.entails(
            Constraint.eq(v(T.hd(out_node)), v("d"))
        )
        # the unrelated cell B is untouched
        b_node = composed.graph.node_of("b")
        assert composed.value.E.entails(
            Constraint.eq(v(T.hd(b_node)), 9)
        )

    def test_restrict_summary_drops_locals(self):
        source = (
            "proc f(x: list) returns (r: list) {"
            " local tmp: list; local i: int;"
            " tmp = x; i = 3; r = tmp; }"
        )
        cfg = callee_cfg(source, "f")
        g = HeapGraph(["A"], {"A": NULL}, {
            "x": "A", "r": "A", "tmp": "A", T.entry_copy("x"): "A"
        })
        value = UniversalValue(
            Polyhedron.of(Constraint.eq(v("i"), 3))
        )
        out = restrict_summary_exit(AU, AbstractHeap(g, value), cfg)
        assert "tmp" not in out.graph.labels
        assert "i" not in out.value.E.support()
        assert "r" in out.graph.labels
