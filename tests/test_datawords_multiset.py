"""Unit tests for the AM multiset domain (paper §3.3)."""

from fractions import Fraction

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.numeric.linexpr import Constraint, LinExpr

AM = MultisetDomain()


def ms_eq(a, b):
    """Row for ms(a) = ms(b)."""
    return {
        T.mhd(a): Fraction(1),
        T.mtl(a): Fraction(1),
        T.mhd(b): Fraction(-1),
        T.mtl(b): Fraction(-1),
    }


class TestLattice:
    def test_top_bottom(self):
        assert not AM.is_bottom(AM.top())
        assert AM.is_bottom(AM.bottom())

    def test_leq_reflexive(self):
        v = MultisetValue([ms_eq("x", "y")])
        assert AM.leq(v, v)

    def test_leq_top(self):
        v = MultisetValue([ms_eq("x", "y")])
        assert AM.leq(v, AM.top())
        assert not AM.leq(AM.top(), v)

    def test_leq_transitive_consequence(self):
        v = MultisetValue([ms_eq("x", "y"), ms_eq("y", "z")])
        target = MultisetValue([ms_eq("x", "z")])
        assert AM.leq(v, target)

    def test_join_keeps_common(self):
        a = MultisetValue([ms_eq("x", "y"), ms_eq("x", "z")])
        b = MultisetValue([ms_eq("x", "y")])
        j = AM.join(a, b)
        assert AM.leq(j, MultisetValue([ms_eq("x", "y")]))
        assert not AM.leq(j, MultisetValue([ms_eq("x", "z")]))

    def test_join_derives_consequences(self):
        # {x=y, y=z} join {x=w, w=z} both imply x=z.
        a = MultisetValue([ms_eq("x", "y"), ms_eq("y", "z")])
        b = MultisetValue([ms_eq("x", "w"), ms_eq("w", "z")])
        j = AM.join(a, b)
        assert AM.leq(j, MultisetValue([ms_eq("x", "z")]))

    def test_join_with_bottom(self):
        v = MultisetValue([ms_eq("x", "y")])
        assert AM.join(v, AM.bottom()) == v
        assert AM.join(AM.bottom(), v) == v

    def test_meet(self):
        a = MultisetValue([ms_eq("x", "y")])
        b = MultisetValue([ms_eq("y", "z")])
        m = AM.meet(a, b)
        assert AM.leq(m, MultisetValue([ms_eq("x", "z")]))

    def test_widen_is_join(self):
        a = MultisetValue([ms_eq("x", "y")])
        b = MultisetValue([ms_eq("x", "y"), ms_eq("y", "z")])
        assert AM.widen(a, b) == AM.join(a, b)


class TestVocabulary:
    def test_rename(self):
        v = MultisetValue([ms_eq("x", "y")])
        r = AM.rename_words(v, {"x": "a"})
        assert AM.leq(r, MultisetValue([ms_eq("a", "y")]))

    def test_project_words_drops_info(self):
        v = MultisetValue([ms_eq("x", "y")])
        p = AM.project_words(v, ["y"])
        assert not p.rows

    def test_project_words_keeps_transitive(self):
        v = MultisetValue([ms_eq("x", "y"), ms_eq("y", "z")])
        p = AM.project_words(v, ["y"])
        assert AM.leq(p, MultisetValue([ms_eq("x", "z")]))

    def test_forget_data(self):
        v = MultisetValue([{T.mhd("x"): Fraction(1), "d": Fraction(-1)}])
        p = AM.forget_data(v, ["d"])
        assert not p.rows

    def test_add_singleton_word(self):
        v = AM.add_singleton_word(AM.top(), "x")
        assert AM.entails_row(v, {T.mtl("x"): Fraction(1)})


class TestTransformers:
    def test_concat_preserves_total_multiset(self):
        # ms(x)=ms(z); concat x := x·y gives ms(x) = ms(z) ⊎ ms(y)? No --
        # the old relation is on the old x, so afterwards
        # ms(new x) = ms(z) ⊎ mhd(y) ⊎ mtl(y).
        v = MultisetValue([ms_eq("x", "z")])
        c = AM.concat(v, "x", ["x", "y"])
        expected = {
            T.mhd("x"): Fraction(1),
            T.mtl("x"): Fraction(1),
            T.mhd("z"): Fraction(-1),
            T.mtl("z"): Fraction(-1),
            # minus ms(y)... y was absorbed: its terms are gone
        }
        # After the concat, ms(x) = ms(z) ⊎ (the absorbed y): since y's
        # terms left the vocabulary, the equality with z alone must be gone.
        assert not AM.entails_row(c, expected)

    def test_concat_then_totals_add_up(self):
        # ms(a) = ms(p) ⊎ ms(q): concat p := p·q yields ms(a) = ms(p).
        row = {
            T.mhd("a"): Fraction(1),
            T.mtl("a"): Fraction(1),
            T.mhd("p"): Fraction(-1),
            T.mtl("p"): Fraction(-1),
            T.mhd("q"): Fraction(-1),
            T.mtl("q"): Fraction(-1),
        }
        v = MultisetValue([row])
        c = AM.concat(v, "p", ["p", "q"])
        assert AM.entails_row(c, ms_eq("a", "p"))

    def test_concat_into_fresh_target(self):
        row = {
            T.mhd("a"): Fraction(1),
            T.mtl("a"): Fraction(1),
            T.mhd("p"): Fraction(-1),
            T.mtl("p"): Fraction(-1),
            T.mhd("q"): Fraction(-1),
            T.mtl("q"): Fraction(-1),
        }
        v = MultisetValue([row])
        c = AM.concat(v, "r", ["p", "q"])
        assert AM.entails_row(c, ms_eq("a", "r"))

    def test_split_preserves_equality(self):
        v = MultisetValue([ms_eq("x", "z")])
        s = AM.split(v, "x", "t")
        # ms(x before) = mhd(x) ⊎ mhd(t) ⊎ mtl(t) = ms(z)
        row = {
            T.mhd("x"): Fraction(1),
            T.mhd("t"): Fraction(1),
            T.mtl("t"): Fraction(1),
            T.mhd("z"): Fraction(-1),
            T.mtl("z"): Fraction(-1),
        }
        assert AM.entails_row(s, row)

    def test_split_then_concat_roundtrip(self):
        v = MultisetValue([ms_eq("x", "z")])
        s = AM.split(v, "x", "t")
        back = AM.concat(s, "x", ["x", "t"])
        assert AM.entails_row(back, ms_eq("x", "z"))

    def test_restrict_len1(self):
        v = AM.restrict_len1(AM.top(), "x")
        assert AM.entails_row(v, {T.mtl("x"): Fraction(1)})


class TestDataTransformers:
    def test_assign_hd_to_data_var(self):
        v = AM.assign_hd(AM.top(), "x", LinExpr.var("d"))
        assert AM.entails_row(v, {T.mhd("x"): Fraction(1), "d": Fraction(-1)})

    def test_assign_hd_forgets_old(self):
        v = MultisetValue([{T.mhd("x"): Fraction(1), "d": Fraction(-1)}])
        out = AM.assign_hd(v, "x", None)
        assert not out.rows

    def test_assign_hd_from_other_head(self):
        v = AM.assign_hd(AM.top(), "x", LinExpr.var(T.hd("y")))
        assert AM.entails_row(
            v, {T.mhd("x"): Fraction(1), T.mhd("y"): Fraction(-1)}
        )

    def test_assign_hd_complex_expr_is_projected(self):
        v = AM.assign_hd(AM.top(), "x", LinExpr.var("d") + 1)
        assert not v.rows

    def test_assign_data(self):
        v = AM.assign_data(AM.top(), "d", LinExpr.var(T.hd("x")))
        assert AM.entails_row(v, {"d": Fraction(1), T.mhd("x"): Fraction(-1)})

    def test_meet_constraint_singleton_equality(self):
        c = Constraint.eq(LinExpr.var(T.hd("x")), LinExpr.var("d"))
        v = AM.meet_constraint(AM.top(), c)
        assert AM.entails_row(v, {T.mhd("x"): Fraction(1), "d": Fraction(-1)})

    def test_meet_constraint_inequality_ignored(self):
        c = Constraint.ge(LinExpr.var(T.hd("x")), LinExpr.var("d"))
        v = AM.meet_constraint(AM.top(), c)
        assert not v.rows

    def test_add_word_copy_eq(self):
        v = AM.add_word_copy_eq(AM.top(), "x", "x0")
        assert AM.entails_row(
            v, {T.mhd("x"): Fraction(1), T.mhd("x0"): Fraction(-1)}
        )
        assert AM.entails_row(v, ms_eq("x", "x0"))


class TestMembership:
    def test_membership_from_ms_equality(self):
        v = MultisetValue([ms_eq("n", "l")])
        decomps = AM.membership_decompositions(T.mhd("n"), v)
        assert any(
            set(d) == {(T.mhd("l"), 1), (T.mtl("l"), 1)} for d in decomps
        )

    def test_membership_from_union(self):
        # ms(a) = ms(l) ⊎ ms(r): mhd(a) ⊑ that union.
        row = {
            T.mhd("a"): Fraction(1),
            T.mtl("a"): Fraction(1),
            T.mhd("l"): Fraction(-1),
            T.mtl("l"): Fraction(-1),
            T.mhd("r"): Fraction(-1),
            T.mtl("r"): Fraction(-1),
        }
        v = MultisetValue([row])
        decomps = AM.membership_decompositions(T.mhd("a"), v)
        assert any(
            set(d) >= {(T.mhd("l"), 1), (T.mhd("r"), 1)} for d in decomps
        )

    def test_no_membership_without_rows(self):
        assert AM.membership_decompositions(T.mhd("x"), AM.top()) == []


class TestEvaluation:
    def test_satisfied_ms_equality(self):
        v = MultisetValue([ms_eq("x", "y")])
        assert AM.satisfied_by(v, {"x": [1, 2, 2], "y": [2, 1, 2]}, {})
        assert not AM.satisfied_by(v, {"x": [1, 2], "y": [1, 3]}, {})

    def test_satisfied_with_data_vars(self):
        v = MultisetValue([{T.mhd("x"): Fraction(1), "d": Fraction(-1)}])
        assert AM.satisfied_by(v, {"x": [7, 1]}, {"d": 7})
        assert not AM.satisfied_by(v, {"x": [8, 1]}, {"d": 7})

    def test_bottom_never_satisfied(self):
        assert not AM.satisfied_by(AM.bottom(), {"x": [1]}, {})

    def test_describe_groups_ms(self):
        v = MultisetValue([ms_eq("x", "y")])
        text = AM.describe(v)
        assert "ms(x)" in text and "ms(y)" in text
