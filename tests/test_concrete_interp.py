"""Tests for the concrete interpreter, including all benchmark procedures."""

import random

import pytest

from repro.concrete.heap import Cell, cells_of, from_cells, to_cells
from repro.concrete.interp import AssertFailure, ConcreteError, Interpreter
from repro.lang.benchlib import benchmark_program
from repro.lang.cfg import build_icfg
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program


def make_interp(source=None):
    if source is None:
        program = benchmark_program()
    else:
        program = normalize_program(typecheck_program(parse_program(source)))
    return Interpreter(build_icfg(program))


@pytest.fixture(scope="module")
def bench():
    return make_interp()


class TestHeapHelpers:
    def test_roundtrip(self):
        assert from_cells(to_cells([1, 2, 3])) == [1, 2, 3]

    def test_empty(self):
        assert to_cells([]) is None
        assert from_cells(None) == []

    def test_cycle_detection(self):
        a = Cell(1)
        a.next = a
        with pytest.raises(ValueError):
            from_cells(a)

    def test_cells_of_order(self):
        head = to_cells([5, 6])
        cells = cells_of(head)
        assert [c.data for c in cells] == [5, 6]


class TestBasics:
    def test_simple_return(self):
        interp = make_interp(
            "proc f(n: int) returns (r: int) { r = n + 1; }"
        )
        assert interp.run("f", [41]) == [42]

    def test_loop(self):
        interp = make_interp(
            "proc f(n: int) returns (r: int) { local i: int;"
            " r = 0; i = 0; while (i < n) { r = r + 2; i = i + 1; } }"
        )
        assert interp.run("f", [5]) == [10]

    def test_null_deref_raises(self):
        interp = make_interp(
            "proc f(x: list) returns (r: int) { r = x->data; }"
        )
        with pytest.raises(ConcreteError):
            interp.run("f", [None])

    def test_assert_pass_and_fail(self):
        interp = make_interp(
            "proc f(n: int) returns (r: int) { r = n; assert r >= 0; }"
        )
        assert interp.run("f", [3]) == [3]
        with pytest.raises(AssertFailure):
            interp.run("f", [-1])

    def test_step_budget(self):
        interp = make_interp(
            "proc f() returns (r: int) { r = 0; while (r >= 0) { r = r + 1; } }"
        )
        interp.max_steps = 1000
        with pytest.raises(ConcreteError):
            interp.run("f", [])


class TestSllClass:
    def test_create(self, bench):
        (x,) = bench.run("create", [4])
        assert from_cells(x) == [0, 0, 0, 0]

    def test_addfst(self, bench):
        (r,) = bench.run("addfst", [to_cells([2, 3]), 1])
        assert from_cells(r) == [1, 2, 3]

    def test_addlst(self, bench):
        (r,) = bench.run("addlst", [to_cells([1, 2]), 3])
        assert from_cells(r) == [1, 2, 3]

    def test_addlst_empty(self, bench):
        (r,) = bench.run("addlst", [None, 9])
        assert from_cells(r) == [9]

    def test_delfst(self, bench):
        (r,) = bench.run("delfst", [to_cells([1, 2, 3])])
        assert from_cells(r) == [2, 3]
        (r,) = bench.run("delfst", [None])
        assert r is None

    def test_dellst(self, bench):
        (r,) = bench.run("dellst", [to_cells([1, 2, 3])])
        assert from_cells(r) == [1, 2]
        (r,) = bench.run("dellst", [to_cells([7])])
        assert r is None
        (r,) = bench.run("dellst", [None])
        assert r is None

    def test_init(self, bench):
        (r,) = bench.run("init", [to_cells([1, 2, 3]), 9])
        assert from_cells(r) == [9, 9, 9]


class TestMapClasses:
    def test_initseq(self, bench):
        (r,) = bench.run("initSeq", [to_cells([5, 5, 5])])
        assert from_cells(r) == [0, 1, 2]

    def test_mapadd(self, bench):
        (r,) = bench.run("mapadd", [to_cells([1, 2]), 10])
        assert from_cells(r) == [11, 12]

    def test_map2add(self, bench):
        x = to_cells([1, 2, 3])
        z = to_cells([0, 0, 0])
        (r,) = bench.run("map2add", [x, z, 5])
        assert from_cells(r) == [6, 7, 8]
        assert from_cells(x) == [1, 2, 3]  # x unmodified

    def test_copy(self, bench):
        x = to_cells([4, 5])
        z = to_cells([0, 0])
        (r,) = bench.run("copy", [x, z])
        assert from_cells(r) == [4, 5]


class TestFoldClasses:
    def test_max(self, bench):
        (m,) = bench.run("max", [to_cells([3, 9, 2])])
        assert m == 9

    def test_max_empty(self, bench):
        (m,) = bench.run("max", [None])
        assert m == 0

    def test_clone(self, bench):
        x = to_cells([1, 2, 3])
        (y,) = bench.run("clone", [x])
        assert from_cells(y) == [1, 2, 3]
        assert cells_of(y)[0] is not cells_of(x)[0]  # fresh cells

    def test_split(self, bench):
        (l, u) = bench.run("split", [to_cells([5, 1, 9, 3, 7]), 4])
        assert sorted(from_cells(l)) == [1, 3]
        assert sorted(from_cells(u)) == [5, 7, 9]
        assert all(v <= 4 for v in from_cells(l))
        assert all(v > 4 for v in from_cells(u))

    def test_delpred(self, bench):
        (r,) = bench.run("delPred", [to_cells([5, 1, 9, 3]), 4])
        assert from_cells(r) == [1, 3]

    def test_equal(self, bench):
        (b,) = bench.run("equal", [to_cells([1, 2]), to_cells([1, 2])])
        assert b == 1
        (b,) = bench.run("equal", [to_cells([1, 2]), to_cells([1, 3])])
        assert b == 0
        (b,) = bench.run("equal", [to_cells([1, 2]), to_cells([1, 2, 3])])
        assert b == 0

    def test_concat(self, bench):
        (r,) = bench.run("concat", [to_cells([1, 2]), to_cells([3])])
        assert from_cells(r) == [1, 2, 3]
        (r,) = bench.run("concat", [None, to_cells([3])])
        assert from_cells(r) == [3]

    def test_merge(self, bench):
        (r,) = bench.run("merge", [to_cells([1, 4, 6]), to_cells([2, 3, 9])])
        assert from_cells(r) == [1, 2, 3, 4, 6, 9]

    def test_merge_uneven(self, bench):
        (r,) = bench.run("merge", [to_cells([5]), to_cells([1, 2])])
        assert from_cells(r) == [1, 2, 5]


class TestSorts:
    @pytest.mark.parametrize("proc", ["bubblesort", "insertsort", "quicksort", "mergesort"])
    def test_sorts_sort(self, bench, proc):
        rng = random.Random(7)
        for _ in range(12):
            values = [rng.randint(-20, 20) for _ in range(rng.randint(0, 9))]
            (r,) = bench.run(proc, [to_cells(values)])
            assert from_cells(r) == sorted(values), proc

    def test_quicksort_preserves_multiset(self, bench):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        x = to_cells(values)
        (r,) = bench.run("quicksort", [x])
        assert sorted(from_cells(r)) == sorted(values)


class TestRecursiveVariants:
    def test_init_rec(self, bench):
        (r,) = bench.run("init_rec", [to_cells([1, 2, 3]), 7])
        assert from_cells(r) == [7, 7, 7]

    def test_mapadd_rec(self, bench):
        (r,) = bench.run("mapadd_rec", [to_cells([1, 2]), 1])
        assert from_cells(r) == [2, 3]

    def test_max_rec(self, bench):
        (m,) = bench.run("max_rec", [to_cells([2, 8, 5])])
        assert m == 8

    def test_clone_rec(self, bench):
        x = to_cells([1, 2])
        (y,) = bench.run("clone_rec", [x])
        assert from_cells(y) == [1, 2]
        assert cells_of(y)[0] is not cells_of(x)[0]
