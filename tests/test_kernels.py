"""Optimized-kernel regression tests (repro.kernels fast vs reference).

Covers the LP memo aliasing bug this PR fixes, bit-identical cache
replay, the HeapSet.map identity fast path, and corpus-wide
representation identity of fast-mode summaries against the reference
kernels.
"""

from fractions import Fraction

import pytest

from repro import kernels
from repro.core.api import Analyzer
from repro.engine.canon import graph_hash, heapset_hash
from repro.lang.benchlib import benchmark_program
from repro.numeric import simplex
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test starts and ends with cold kernel caches in fast mode."""
    kernels.set_mode("fast")
    yield
    kernels.set_mode("fast")


def _x():
    return LinExpr.var("x")


def _system():
    # 1 <= x <= 5
    return [
        Constraint.ge(_x(), 1),
        Constraint.le(_x(), 5),
    ]


# -- LP memo-key aliasing (the bug this PR fixes) ------------------------------


def test_scaled_objectives_do_not_alias():
    """``min 2x`` after ``min x`` must not replay the cached ``min x``.

    LinExpr.key() normalizes scale away, so memoizing the objective by
    key aliased ``x`` and ``2x`` (and any two positive constants) to one
    cache slot; the second query returned the first's optimum.
    """
    cons = _system()
    first = simplex.solve_lp(cons, _x())
    second = simplex.solve_lp(cons, _x().scale(2))
    assert first.value == 1
    assert second.value == 2


def test_constant_objectives_do_not_alias():
    cons = _system()
    five = simplex.solve_lp(cons, LinExpr({}, Fraction(5)))
    one = simplex.solve_lp(cons, LinExpr({}, Fraction(1)))
    assert five.value == 5
    assert one.value == 1


def test_negated_objective_not_aliased_with_maximize():
    cons = _system()
    lo = simplex.solve_lp(cons, _x())
    hi = simplex.solve_lp(cons, _x(), maximize=True)
    assert (lo.value, hi.value) == (1, 5)


# -- cache replay is bit-identical --------------------------------------------


def test_cache_hit_is_bit_identical():
    cons = _system()
    cold = simplex.solve_lp(cons, _x())
    hits_before = simplex.cache_stats()["solve_hits"]
    warm = simplex.solve_lp(cons, _x())
    assert simplex.cache_stats()["solve_hits"] == hits_before + 1
    assert warm is cold  # the memo returns the very same LPResult
    simplex.clear_caches()
    recomputed = simplex.solve_lp(cons, _x())
    assert recomputed.status == cold.status
    assert recomputed.value == cold.value
    assert repr(recomputed) == repr(cold)


def test_fast_and_reference_lp_agree_exactly():
    cons = _system() + [Constraint.ge(LinExpr.var("y"), _x())]
    objectives = [
        _x(),
        _x().scale(3),
        LinExpr.var("y") + _x(),
        LinExpr({}, Fraction(7, 2)),
    ]
    for objective in objectives:
        for maximize in (False, True):
            kernels.set_mode("fast")
            fast = simplex.solve_lp(cons, objective, maximize)
            kernels.set_mode("reference")
            ref = simplex.solve_lp(cons, objective, maximize)
            assert fast.status == ref.status
            assert fast.value == ref.value
            assert repr(fast) == repr(ref)


# -- minimized() memo ----------------------------------------------------------


def test_minimized_memo_returns_same_representation():
    cons = [
        Constraint.ge(_x(), 0),
        Constraint.ge(_x(), -1),  # redundant
        Constraint.le(_x(), 9),
    ]
    first = Polyhedron(list(cons)).minimized()
    second = Polyhedron(list(cons)).minimized()
    assert [c.key() for c in first.constraints] == [
        c.key() for c in second.constraints
    ]
    kernels.set_mode("reference")
    ref = Polyhedron(list(cons)).minimized()
    assert [repr(c) for c in ref.constraints] == [
        repr(c) for c in first.constraints
    ]


# -- HeapSet.map identity fast path -------------------------------------------


def test_heapset_map_identity_returns_self():
    analyzer = Analyzer(benchmark_program())
    result = analyzer.analyze("addfst", domain="am")
    for _, summary in result.summaries:
        if summary.is_bottom():
            continue
        mapped = summary.map(result.domain, lambda heap: [heap])
        assert mapped is summary
        changed = summary.map(result.domain, lambda heap: [heap, heap])
        assert changed is not summary


# -- corpus-wide representation identity --------------------------------------

IDENTITY_ROWS = [
    ("addfst", "am"),
    ("delfst", "am"),
    ("insertsort", "am"),
    ("merge", "am"),
    ("create", "au"),
    ("delfst", "au"),
]


def _summary_hashes(name, domain):
    analyzer = Analyzer(benchmark_program())
    result = analyzer.analyze(name, domain=domain, max_steps=400_000)
    assert not result.diagnostics, (name, domain, result.diagnostics)
    return sorted(
        (graph_hash(entry.graph), heapset_hash(summary, result.domain))
        for entry, summary in result.summaries
    )


@pytest.mark.parametrize("name,domain", IDENTITY_ROWS)
def test_fast_summaries_identical_to_reference(name, domain):
    kernels.set_mode("fast")
    fast = _summary_hashes(name, domain)
    kernels.set_mode("reference")
    ref = _summary_hashes(name, domain)
    assert fast == ref


def test_fuzz_corpus_entries_identical_to_reference():
    """Every checked-in fuzz corpus entry passes the kernel-identity oracle."""
    from pathlib import Path

    from repro.fuzz.__main__ import load_corpus_entry
    from repro.fuzz.kernelcheck import KernelChecker

    corpus = sorted(
        (Path(__file__).parent / "corpus").glob("*.lisl")
    )
    assert corpus, "fuzz corpus is missing"
    checker = KernelChecker()
    for path in corpus:
        entry = load_corpus_entry(path)
        findings = checker.check_source(entry.source, entry.root, entry.inputs)
        assert not findings, (path, [f.describe() for f in findings])
