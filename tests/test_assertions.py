"""Tests for assume/assert handling and pre/post reasoning (paper §6.3)."""

import pytest

from repro import Analyzer
from repro.core.assertions import AssertionChecker


def run_checker(source, proc, domain="au"):
    analyzer = Analyzer.from_source(source)
    checker = AssertionChecker()
    analyzer.analyze(proc, domain=domain, assume_handler=checker)
    return checker


class TestDataAssertions:
    def test_valid_postcondition(self):
        checker = run_checker(
            """
            proc f(n: int) returns (r: int) {
              r = n + 1;
              assert r > n;
            }
            """,
            "f",
        )
        assert checker.all_verified()

    def test_invalid_postcondition(self):
        checker = run_checker(
            """
            proc f(n: int) returns (r: int) {
              r = n + 1;
              assert r > n + 1;
            }
            """,
            "f",
        )
        assert not checker.all_verified()

    def test_assume_enables_assert(self):
        checker = run_checker(
            """
            proc f(n: int) returns (r: int) {
              assume n >= 10;
              r = n;
              assert r >= 10;
            }
            """,
            "f",
        )
        assert checker.all_verified()

    def test_assert_on_list_data(self):
        checker = run_checker(
            """
            proc f(x: list) returns (r: int) {
              r = 0;
              if (x != NULL) {
                x->data = 5;
                assert x->data == 5;
              }
            }
            """,
            "f",
        )
        assert checker.all_verified()

    def test_neq_assertion(self):
        checker = run_checker(
            """
            proc f(n: int) returns (r: int) {
              r = n + 1;
              assert r != n;
            }
            """,
            "f",
        )
        assert checker.all_verified()


class TestListAssertions:
    def test_assume_sorted_then_assert_sorted(self):
        checker = run_checker(
            """
            proc f(x: list) returns (r: list) {
              assume sorted(x);
              r = x;
              assert sorted(r);
            }
            """,
            "f",
            domain="au",
        )
        assert checker.all_verified()

    def test_sorted_not_assumed_fails(self):
        checker = run_checker(
            """
            proc f(x: list) returns (r: list) {
              r = x;
              assert sorted(r);
            }
            """,
            "f",
            domain="au",
        )
        assert not checker.all_verified()

    def test_equal_after_identity(self):
        checker = run_checker(
            """
            proc f(x: list, y: list) returns (r: list) {
              assume equal(x, y);
              r = x;
              assert equal(r, y);
            }
            """,
            "f",
            domain="au",
        )
        assert checker.all_verified()

    def test_equal_broken_by_write(self):
        checker = run_checker(
            """
            proc f(x: list, y: list) returns (r: list) {
              assume equal(x, y);
              r = x;
              if (x != NULL) {
                x->data = 999;
                assert equal(r, y);
              }
            }
            """,
            "f",
            domain="au",
        )
        assert not checker.all_verified()

    def test_ms_eq_in_am_domain(self):
        checker = run_checker(
            """
            proc f(x: list, y: list) returns (r: list) {
              assume ms_eq(x, y);
              r = x;
              assert ms_eq(r, y);
            }
            """,
            "f",
            domain="am",
        )
        assert checker.all_verified()

    def test_ms_eq_survives_data_permutation(self):
        # swapping the first element's data with a saved value keeps ms
        # equality only if the values travel; a blind overwrite breaks it.
        checker = run_checker(
            """
            proc f(x: list, y: list) returns (r: list) {
              assume ms_eq(x, y);
              r = x;
              if (x != NULL) {
                x->data = 0;
                assert ms_eq(r, y);
              }
            }
            """,
            "f",
            domain="am",
        )
        assert not checker.all_verified()

    def test_interprocedural_postcondition(self):
        checker = run_checker(
            """
            proc setv(x: list, v: int) returns (r: list) {
              local c: list;
              r = x;
              c = x;
              while (c != NULL) { c->data = v; c = c->next; }
            }
            proc main(x: list) returns (r: list) {
              local e: int;
              r = setv(x, 3);
              if (r != NULL) {
                e = r->data;
                assert e == 3;
              }
            }
            """,
            "main",
            domain="au",
        )
        assert checker.all_verified()
