"""The generator's guarantee: every program parses, typechecks, builds an
ICFG, and round-trips through the pretty-printer."""

import pytest

from repro.fuzz.progen import GenConfig, generate_program
from repro.lang import ast as A
from repro.lang.cfg import build_icfg
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import typecheck_program

FAST_SEEDS = list(range(40))
SLOW_SEEDS = list(range(40, 400))


def _check_seed(seed, config=None):
    program, root = generate_program(seed, config)
    checked = typecheck_program(program)
    # generate -> pretty-print -> parse -> identical AST (post-typecheck,
    # since only declared types classify `p == q` comparisons)
    reparsed = typecheck_program(parse_program(pretty_program(program)))
    assert reparsed == checked, f"round-trip mismatch for seed {seed}"
    norm = normalize_program(checked)
    icfg = build_icfg(norm)
    icfg.cfg(root)  # the root procedure exists in the ICFG


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_generated_program_roundtrips(seed):
    _check_seed(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_generated_program_roundtrips_slow(seed):
    _check_seed(seed)


@pytest.mark.parametrize("seed", range(10))
def test_generator_respects_size_knobs(seed):
    config = GenConfig(n_procs=1, max_stmts=2, max_depth=0, allow_loops=False)
    program, root = generate_program(seed, config)
    assert len(program.procedures) == 1
    assert root == "p0"

    def no_loops(stmts):
        for stmt in stmts:
            assert not isinstance(stmt, A.While)
            if isinstance(stmt, A.If):
                no_loops(stmt.then_body)
                no_loops(stmt.else_body)

    no_loops(program.procedures[0].body)
    _check_seed(seed, config)


def test_generator_is_deterministic():
    a = generate_program(123)
    b = generate_program(123)
    assert pretty_program(a[0]) == pretty_program(b[0])
    assert a[1] == b[1]


def test_generator_emits_calls_and_loops_somewhere():
    saw_call = saw_loop = saw_if = False
    for seed in range(30):
        program, _ = generate_program(seed)
        text = pretty_program(program)
        saw_loop |= "while" in text
        saw_if |= "if (" in text
        for proc in program.procedures:
            for other in program.procedures:
                if f"{other.name}(" in text.replace(f"proc {other.name}", ""):
                    saw_call = True
    assert saw_call and saw_loop and saw_if
