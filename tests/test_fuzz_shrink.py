"""Shrinker tests: minimized findings still reproduce, and shrinking
actually shrinks."""

from fractions import Fraction

import pytest

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.fuzz.oracle import Oracle, OracleConfig
from repro.fuzz.progen import generate_program
from repro.fuzz.shrink import Shrinker, _stmt_paths, shrink_finding
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program

AM_ONLY = OracleConfig(rounds=4, domains=("am",))


def _unsound_split(self, value, word, tail):
    if value.is_bot:
        return value
    rows = list(value.rows)
    rows.append({T.mtl(word): Fraction(1)})
    return MultisetValue(rows)


def _first_mutant_finding(oracle):
    for seed in range(25):
        program, root = generate_program(seed)
        findings = [
            f
            for f in oracle.check_program(program, root, seed)
            if f.kind in ("gamma", "no_shape")
        ]
        if findings:
            return findings[0]
    pytest.fail("mutant produced no finding to shrink")


def test_shrink_produces_smaller_reproducer(monkeypatch):
    monkeypatch.setattr(MultisetDomain, "split", _unsound_split)
    oracle = Oracle(AM_ONLY)
    finding = _first_mutant_finding(oracle)
    original = typecheck_program(parse_program(finding.source))
    shrunk = shrink_finding(finding, oracle, max_checks=60)
    # same failure signature survives
    assert shrunk.signature() == finding.signature()
    reduced = typecheck_program(parse_program(shrunk.source))
    assert len(_stmt_paths(reduced)) <= len(_stmt_paths(original))
    assert len(reduced.procedures) <= len(original.procedures)
    # and the shrunk source is a genuine reproducer on its own
    views = [shrunk.inputs] if shrunk.inputs is not None else []
    replay = oracle.check_source(shrunk.source, shrunk.root, views)
    assert any(f.signature() == finding.signature() for f in replay)


def test_shrink_is_noop_on_healthy_program():
    """A finding that does not reproduce is returned unchanged."""
    program, root = generate_program(3)
    from repro.fuzz.oracle import Finding
    from repro.lang.pretty import pretty_program

    fake = Finding(
        kind="gamma",
        domain="am",
        root=root,
        message="synthetic",
        source=pretty_program(program),
        inputs=[[1, 2]],
    )
    oracle = Oracle(AM_ONLY)
    out = shrink_finding(fake, oracle, max_checks=10)
    assert out is fake


def test_shrinker_respects_check_budget(monkeypatch):
    monkeypatch.setattr(MultisetDomain, "split", _unsound_split)
    oracle = Oracle(AM_ONLY)
    finding = _first_mutant_finding(oracle)
    program = typecheck_program(parse_program(finding.source))
    shrinker = Shrinker(oracle, finding.root, finding.signature(), max_checks=5)
    views = [finding.inputs] if finding.inputs is not None else []
    shrinker.still_fails(program, views)
    shrinker.shrink_program(program, views)
    assert shrinker.checks <= 5
