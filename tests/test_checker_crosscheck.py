"""Differential validation of Tier-B verdicts (``repro.checker.crosscheck``).

The harness's contract is asymmetric: an honest checker must never be
contradicted by a concrete run (``unknown`` is always a legal answer),
while a checker that *lies* — claims ``safe`` for a refutable obligation
— must be caught.  The mutant tests patch the verdict aggregation to
always answer ``safe`` and assert the harness reports the lie, which is
the same evidence the CI ``--check-safety`` fuzz lane relies on.
"""

from pathlib import Path

import pytest

from repro.checker import crosscheck as CC
from repro.checker import safety as S
from repro.fuzz.__main__ import main as fuzz_main
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program

BUGGY = Path(__file__).parent / "corpus" / "buggy"
CLEAN = Path(__file__).parent / "corpus" / "clean"


def _program(source: str):
    return typecheck_program(parse_program(source))


DEREF = (
    "proc main(x: list) returns (r: list) {\n"
    "  local t: list;\n"
    "  t = x->next;\n"
    "  r = t;\n"
    "}\n"
)


class TestHonestChecker:
    @pytest.mark.parametrize(
        "path",
        sorted(BUGGY.glob("*.lisl")) + sorted(CLEAN.glob("*.lisl")),
        ids=lambda p: p.stem,
    )
    def test_corpus_never_contradicted(self, path):
        source = path.read_text()
        program = _program(source)
        root = program.procedures[0].name
        findings = CC.CrossChecker().check_program(program, root, seed=11)
        assert findings == []

    def test_input_dependent_deref_not_contradicted(self):
        # The empty-list input makes the concrete run fault, but the
        # verdict there is unknown, not safe — no contradiction.
        checker = CC.CrossChecker()
        findings = checker.check_views(
            _program(DEREF), "main", [[[]], [[1, 2]]], seed=0
        )
        assert findings == []


class TestMutantIsCaught:
    def test_always_safe_mutant_contradicted(self, monkeypatch):
        monkeypatch.setattr(S, "_verdict", lambda bad, good: S.SAFE)
        findings = CC.CrossChecker().check_views(
            _program(DEREF), "main", [[[]]], seed=0
        )
        assert any(
            "contradicts a safe null-deref verdict" in f.message
            for f in findings
        )
        assert all(f.kind == "checker" for f in findings)

    def test_leak_mutant_contradicted(self, monkeypatch):
        monkeypatch.setattr(S, "_verdict", lambda bad, good: S.SAFE)
        source = (BUGGY / "leak_push.lisl").read_text()
        findings = CC.CrossChecker().check_views(
            _program(source), "main", [[[1], 5]], seed=0
        )
        assert any("leak" in f.message for f in findings)

    def test_missed_site_reported(self):
        # A deref the checker has no obligation site for is itself a
        # bug in the checker's site enumeration — reported, not ignored.
        checker = CC.CrossChecker()
        report = S.check_safety(
            CC.Analyzer(normalize_program(_program(DEREF))),
            S.SafetyOptions(),
        )
        report.sites = [s for s in report.sites
                        if s.rule_id != "safety.null-deref"]
        events = [("deref", "main", 3)]
        findings = checker._contradictions(
            report, events, "main", DEREF, seed=0
        )
        assert any("missed dereference" in f.message for f in findings)

    def test_degraded_procs_are_skipped(self):
        checker = CC.CrossChecker()
        report = S.check_safety(
            CC.Analyzer(normalize_program(_program(DEREF))),
            S.SafetyOptions(max_steps=1),
        )
        assert report.proc_status["main"].startswith("budget")
        events = [("deref", "main", 3), ("leak", "main", None)]
        assert checker._contradictions(report, events, "main", DEREF, 0) == []


class TestFuzzLane:
    def test_check_safety_flag_clean_run(self, capsys):
        code = fuzz_main(
            ["--check-safety", "--iters", "4", "--seed", "3", "--rounds", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzzing done: 0 failure(s)" in out

    def test_check_safety_parallel_matches_flags(self, capsys):
        code = fuzz_main(
            ["--check-safety", "--iters", "4", "--seed", "3", "--rounds", "2",
             "--jobs", "2"]
        )
        assert code == 0
        capsys.readouterr()
