"""Unit tests for linear expressions and constraints."""

from fractions import Fraction

from repro.numeric.linexpr import Constraint, EQ, GE, LinExpr


def x():
    return LinExpr.var("x")


def y():
    return LinExpr.var("y")


class TestLinExpr:
    def test_var_and_const(self):
        e = x() + 3
        assert e.coeff("x") == 1
        assert e.const == 3

    def test_zero_coefficients_dropped(self):
        e = x() - x()
        assert e.is_const()
        assert e.const == 0

    def test_addition_merges_support(self):
        e = x() + y() + x()
        assert e.coeff("x") == 2
        assert e.coeff("y") == 1
        assert e.support() == {"x", "y"}

    def test_scale(self):
        e = (x() + 2).scale(Fraction(1, 2))
        assert e.coeff("x") == Fraction(1, 2)
        assert e.const == 1

    def test_negation(self):
        e = -(x() - y())
        assert e.coeff("x") == -1
        assert e.coeff("y") == 1

    def test_substitute(self):
        e = x() + y()
        sub = e.substitute({"x": y() + 1})
        assert sub.coeff("y") == 2
        assert sub.const == 1
        assert "x" not in sub.support()

    def test_substitute_self_referential(self):
        e = x().substitute({"x": x() - 1})
        assert e.coeff("x") == 1
        assert e.const == -1

    def test_rename(self):
        e = (x() + y()).rename({"x": "z"})
        assert e.support() == {"z", "y"}

    def test_rename_collision_merges(self):
        e = (x() + y()).rename({"x": "y"})
        assert e.coeff("y") == 2

    def test_evaluate(self):
        e = x().scale(2) + y() - 1
        assert e.evaluate({"x": 3, "y": 4}) == 9

    def test_normalized_integer_coprime(self):
        e = x().scale(Fraction(2, 3)) + Fraction(4, 3)
        n = e.normalized()
        assert n.coeff("x") == 1
        assert n.const == 2

    def test_key_equality_of_scaled_expressions(self):
        a = x().scale(2) + 4
        b = x() + 2
        assert a.key() == b.key()

    def test_hash_consistency(self):
        assert hash(x() + 1) == hash(LinExpr({"x": 1}, 1))


class TestConstraint:
    def test_ge_constructor(self):
        c = Constraint.ge(x(), 3)  # x >= 3
        assert c.rel == GE
        assert c.holds({"x": 3})
        assert not c.holds({"x": 2})

    def test_le_constructor(self):
        c = Constraint.le(x(), y())  # x <= y
        assert c.holds({"x": 1, "y": 2})
        assert not c.holds({"x": 3, "y": 2})

    def test_eq_constructor(self):
        c = Constraint.eq(x(), 5)
        assert c.rel == EQ
        assert c.holds({"x": 5})
        assert not c.holds({"x": 4})

    def test_strict_integer_tightening(self):
        c = Constraint.lt_int(x(), 3)  # x < 3 becomes x <= 2
        assert c.holds({"x": 2})
        assert not c.holds({"x": Fraction(5, 2)})

    def test_gt_int(self):
        c = Constraint.gt_int(x(), 0)
        assert c.holds({"x": 1})
        assert not c.holds({"x": Fraction(1, 2)})

    def test_trivial_and_contradiction(self):
        assert Constraint.ge(LinExpr.const_expr(1)).is_trivial()
        assert Constraint.ge(LinExpr.const_expr(-1)).is_contradiction()
        assert Constraint.eq(LinExpr.const_expr(0)).is_trivial()
        assert Constraint.eq(LinExpr.const_expr(2)).is_contradiction()

    def test_halves_of_equality(self):
        c = Constraint.eq(x(), y())
        halves = list(c.halves())
        assert len(halves) == 2
        assert all(h.rel == GE for h in halves)
        assert halves[0].expr == -halves[1].expr

    def test_normalized_equality_sign_canonical(self):
        a = Constraint.eq(x() - y())
        b = Constraint.eq(y() - x())
        assert a.normalized().key() == b.normalized().key()

    def test_key_distinguishes_relation(self):
        assert Constraint.ge(x()).key() != Constraint.eq(x()).key()

    def test_rename(self):
        c = Constraint.ge(x(), y()).rename({"y": "z"})
        assert c.support() == {"x", "z"}
