"""Property-based tests: AM lattice laws and concrete soundness."""

import random
from collections import Counter
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue

AM = MultisetDomain()
WORDS = ["a", "b", "c"]
TERMS = [T.mhd(w) for w in WORDS] + [T.mtl(w) for w in WORDS] + ["d"]


@st.composite
def row_st(draw):
    size = draw(st.integers(min_value=2, max_value=4))
    terms = draw(
        st.lists(st.sampled_from(TERMS), min_size=size, max_size=size, unique=True)
    )
    coeffs = draw(
        st.lists(
            st.sampled_from([-2, -1, 1, 2]), min_size=size, max_size=size
        )
    )
    return {t: Fraction(k) for t, k in zip(terms, coeffs)}


@st.composite
def value_st(draw):
    rows = draw(st.lists(row_st(), min_size=0, max_size=3))
    return MultisetValue(rows)


@st.composite
def env_st(draw):
    words = {}
    for w in WORDS:
        words[w] = draw(
            st.lists(st.integers(-3, 3), min_size=1, max_size=4)
        )
    data = {"d": draw(st.integers(-3, 3))}
    return words, data


@settings(max_examples=60, deadline=None)
@given(value_st(), value_st())
def test_join_is_upper_bound(v1, v2):
    j = AM.join(v1, v2)
    assert AM.leq(v1, j)
    assert AM.leq(v2, j)


@settings(max_examples=60, deadline=None)
@given(value_st(), value_st())
def test_meet_is_lower_bound(v1, v2):
    m = AM.meet(v1, v2)
    assert AM.leq(m, v1)
    assert AM.leq(m, v2)


@settings(max_examples=60, deadline=None)
@given(value_st())
def test_leq_reflexive(v):
    assert AM.leq(v, v)


@settings(max_examples=40, deadline=None)
@given(value_st(), value_st(), env_st())
def test_join_soundness_on_concrete_words(v1, v2, env):
    words, data = env
    j = AM.join(v1, v2)
    if AM.satisfied_by(v1, words, data) or AM.satisfied_by(v2, words, data):
        assert AM.satisfied_by(j, words, data)


@settings(max_examples=40, deadline=None)
@given(value_st(), env_st())
def test_project_soundness(v, env):
    words, data = env
    p = AM.project_words(v, ["b"])
    if AM.satisfied_by(v, words, data):
        assert AM.satisfied_by(p, words, data)


@settings(max_examples=40, deadline=None)
@given(value_st(), env_st())
def test_split_soundness(v, env):
    """Concrete split: word 'a' of length >= 2 splits into head + tail."""
    words, data = env
    if len(words["a"]) < 2:
        return
    if not AM.satisfied_by(v, words, data):
        return
    out = AM.split(v, "a", "t")
    new_words = dict(words)
    new_words["a"] = words["a"][:1]
    new_words["t"] = words["a"][1:]
    assert AM.satisfied_by(out, new_words, data)


@settings(max_examples=40, deadline=None)
@given(value_st(), env_st())
def test_concat_soundness(v, env):
    """Concrete concat: a := a . b."""
    words, data = env
    if not AM.satisfied_by(v, words, data):
        return
    out = AM.concat(v, "a", ["a", "b"])
    new_words = {"a": words["a"] + words["b"], "c": words["c"]}
    assert AM.satisfied_by(out, new_words, data)


@settings(max_examples=40, deadline=None)
@given(value_st(), env_st())
def test_membership_decompositions_sound(v, env):
    """Every decomposition mhd(w) ⊑ U really contains the head value."""
    words, data = env
    if not AM.satisfied_by(v, words, data):
        return
    for w in WORDS:
        for rhs in AM.membership_decompositions(T.mhd(w), v):
            bag = Counter()
            ok = True
            for term, mult in rhs:
                if T.is_mhd(term):
                    src = T.word_of(term)
                    bag[words[src][0]] += mult
                elif T.is_mtl(term):
                    src = T.word_of(term)
                    for x in words[src][1:]:
                        bag[x] += mult
                elif term in data:
                    bag[data[term]] += mult
                else:
                    ok = False
            if ok:
                assert bag[words[w][0]] >= 1, (
                    f"decomposition {rhs} misses head of {w} "
                    f"in {words}, {data}, value {v}"
                )
