"""Tests for the analysis engine subsystem (repro.engine).

Covers: canonical hashing of graphs/heaps/heap sets (agreement modulo
isomorphism, property-style), the summary cache (hits on re-analysis,
LRU eviction, disk store roundtrip), SCC-aware scheduling (condensation
ranks, pop order, old-vs-new engine agreement), telemetry (counters,
JSONL traces, ``result.stats``), and the structured budget diagnostics.
"""

import json

import pytest
from hypothesis import given, settings

from repro import Analyzer, EngineOptions, SummaryCache
from repro.core.interproc import AnalysisBudgetExceeded, Engine
from repro.datawords.multiset import MultisetDomain
from repro.engine.canon import (
    domain_descriptor,
    graph_hash,
    heap_hash,
    heapset_hash,
    icfg_fingerprint,
)
from repro.engine.scheduler import FifoScheduler, Scheduler, condensation, tarjan_scc
from repro.engine.telemetry import Telemetry
from repro.lang.benchlib import benchmark_program
from repro.lang.cfg import build_icfg
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL, HeapGraph
from repro.shape.heap_set import HeapSet

from tests.test_shape_graph import chain, graph_st

_AM = MultisetDomain()


# ---------------------------------------------------------------------------
# canon: stable hashing


class TestCanonicalHashing:
    def test_isomorphic_graphs_same_hash(self):
        g1 = chain({"x": 0, "y": 1})
        g2 = HeapGraph(["p", "q"], {"p": "q", "q": NULL}, {"x": "p", "y": "q"})
        assert graph_hash(g1) == graph_hash(g2)

    def test_label_placement_distinguishes_hash(self):
        assert graph_hash(chain({"x": 0, "y": 1})) != graph_hash(
            chain({"x": 0, "y": 0})
        )

    def test_hash_cached_on_graph(self):
        g = chain({"x": 0})
        h = graph_hash(g)
        assert g._stable_hash == h
        assert graph_hash(g) is h

    def test_heap_hash_modulo_isomorphism(self):
        g1 = chain({"x": 0, "y": 1})
        g2 = HeapGraph(["p", "q"], {"p": "q", "q": NULL}, {"x": "p", "y": "q"})
        h1 = AbstractHeap(g1, _AM.top())
        h2 = AbstractHeap(g2, _AM.top())
        assert heap_hash(h1, _AM) == heap_hash(h2, _AM)

    def test_heapset_hash_order_independent(self):
        a = AbstractHeap(chain({"x": 0}), _AM.top())
        b = AbstractHeap(chain({"x": 0, "y": 1}), _AM.top())
        s1 = HeapSet.of(_AM, [a, b])
        s2 = HeapSet.of(_AM, [b, a])
        assert heapset_hash(s1, _AM) == heapset_hash(s2, _AM)

    @settings(max_examples=60, deadline=None)
    @given(graph_st())
    def test_property_renamed_graph_same_hash(self, g):
        renamed = g.rename_nodes({n: f"zz_{n}" for n in g.nodes if n != NULL})
        assert graph_hash(renamed) == graph_hash(g)
        heap = AbstractHeap(g, _AM.top())
        heap2 = AbstractHeap(renamed, _AM.top())
        assert heap_hash(heap, _AM) == heap_hash(heap2, _AM)

    def test_icfg_fingerprint_distinguishes_programs(self):
        a1 = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        a2 = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = NULL; }"
        )
        a3 = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        assert icfg_fingerprint(a1.icfg) != icfg_fingerprint(a2.icfg)
        assert icfg_fingerprint(a1.icfg) == icfg_fingerprint(a3.icfg)

    def test_domain_descriptor(self):
        from repro.datawords.patterns import pattern_set
        from repro.datawords.universal import UniversalDomain

        am = domain_descriptor(MultisetDomain())
        au1 = domain_descriptor(UniversalDomain(pattern_set("P=", "P1")))
        au2 = domain_descriptor(UniversalDomain(pattern_set("P=", "P1", "P2")))
        assert am != au1 != au2
        assert au1 == domain_descriptor(UniversalDomain(pattern_set("P=", "P1")))


# ---------------------------------------------------------------------------
# scheduler: SCCs and pop order


MUTUAL_RECURSION = """
proc even(x: list) returns (n: int) {
  local t: list;
  local m: int;
  if (x == NULL) { n = 1; }
  else { t = x->next; m = odd(t); n = m; }
}
proc odd(x: list) returns (n: int) {
  local t: list;
  local m: int;
  if (x == NULL) { n = 0; }
  else { t = x->next; m = even(t); n = m; }
}
proc main(x: list) returns (n: int) {
  n = even(x);
}
"""


class TestScheduler:
    def test_tarjan_groups_mutual_recursion(self):
        icfg = build_icfg(
            Analyzer.from_source(MUTUAL_RECURSION).program
        )
        components = tarjan_scc(icfg.call_graph())
        assert ["even", "odd"] in components
        assert ["main"] in components

    def test_condensation_ranks_callees_first(self):
        rank = condensation(
            build_icfg(Analyzer.from_source(MUTUAL_RECURSION).program).call_graph()
        )
        assert rank["even"] == rank["odd"] < rank["main"]

    def test_benchlib_sort_helpers_rank_below_sorts(self):
        rank = condensation(build_icfg(benchmark_program()).call_graph())
        assert rank["qsplit"] < rank["quicksort"]
        assert rank["clone"] < rank["quicksort"]
        assert rank["concat3"] < rank["quicksort"]
        assert rank["msplit"] < rank["mergesort"]
        assert rank["merge"] < rank["mergesort"]

    def test_pop_order_callees_before_callers(self):
        sched = Scheduler({"main": {"callee"}, "callee": set()})
        sched.push(("main", "e0"), "main", depth=0)
        sched.push(("callee", "e1"), "callee", depth=1)
        assert sched.pop() == ("callee", "e1")
        assert sched.pop() == ("main", "e0")

    def test_deeper_records_first_within_scc(self):
        sched = Scheduler({"a": {"a"}})
        sched.push(("a", "shallow"), "a", depth=0)
        sched.push(("a", "deep"), "a", depth=3)
        assert sched.pop() == ("a", "deep")

    def test_pending_dedup_and_stats(self):
        sched = Scheduler({"a": set()})
        key = ("a", "e")
        sched.push(key, "a")
        sched.push(key, "a")  # already pending: ignored
        assert len(sched) == 1
        assert sched.pop() == key
        sched.push(key, "a")  # re-push after pop counts as a requeue
        stats = sched.stats()
        assert stats["requeues"] == 1
        assert stats["pushes"] == 2

    def test_fifo_scheduler_preserves_order(self):
        sched = FifoScheduler()
        sched.push("k1", "a")
        sched.push("k2", "b")
        assert sched.pop() == "k1"
        assert sched.pop() == "k2"

    def test_mutual_recursion_analyzes(self):
        res = Analyzer.from_source(MUTUAL_RECURSION).analyze("main", domain="am")
        assert res.ok
        assert res.summaries
        sccs = res.stats["scheduler"]["sccs"]
        assert sccs == 2  # {even, odd} and {main}


# ---------------------------------------------------------------------------
# engine agreement: the scheduler must not change computed summaries


def _fingerprint(result):
    domain = result.domain
    out = []
    for entry, summary in result.summaries:
        out.append(
            (
                entry.graph.key(),
                tuple(
                    sorted(
                        (h.graph.key(), domain.describe(h.value)) for h in summary
                    )
                ),
            )
        )
    return out


class TestEngineAgreement:
    @pytest.mark.parametrize(
        "proc,domain",
        [
            ("quicksort", "am"),
            # ~10s and ~17s respectively; the quicksort/am case keeps the
            # old-vs-new agreement check in the fast lane.
            pytest.param("mergesort", "am", marks=pytest.mark.slow),
            pytest.param("init", "au", marks=pytest.mark.slow),
        ],
    )
    def test_fifo_and_scc_summaries_agree(self, proc, domain):
        analyzer = Analyzer(benchmark_program())
        fifo = analyzer.analyze(
            proc,
            domain=domain,
            engine_opts=EngineOptions(scheduler="fifo", use_cache=False),
        )
        scc = analyzer.analyze(
            proc,
            domain=domain,
            engine_opts=EngineOptions(scheduler="scc", use_cache=False),
        )
        assert fifo.ok and scc.ok
        assert _fingerprint(fifo) == _fingerprint(scc)

    def test_cached_rerun_returns_same_summaries(self):
        analyzer = Analyzer(benchmark_program())
        first = analyzer.analyze("init", domain="au")
        second = analyzer.analyze("init", domain="au")
        assert second.stats["from_cache"]
        assert _fingerprint(first) == _fingerprint(second)


# ---------------------------------------------------------------------------
# cache


class TestSummaryCache:
    def test_hit_on_reanalysis(self):
        analyzer = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        analyzer.analyze("id", domain="am")
        res = analyzer.analyze("id", domain="am")
        assert res.stats["from_cache"]
        assert analyzer.cache.hits == 1
        assert analyzer.cache.hit_rate() == 0.5

    def test_different_domain_misses(self):
        analyzer = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        analyzer.analyze("id", domain="am")
        res = analyzer.analyze("id", domain="au")
        assert not res.stats["from_cache"]

    def test_use_cache_false_bypasses(self):
        analyzer = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        analyzer.analyze("id", domain="am")
        res = analyzer.analyze(
            "id", domain="am", engine_opts=EngineOptions(use_cache=False)
        )
        assert not res.stats["from_cache"]

    def test_stateful_assume_handler_is_not_cached(self):
        calls = []

        def handler(op, state, domain):
            calls.append(op)
            return state

        analyzer = Analyzer.from_source(
            """
            proc f(x: list) returns (r: list) {
              r = x;
              assert sorted(r);
            }
            """
        )
        analyzer.analyze("f", domain="am", assume_handler=handler)
        first = len(calls)
        assert first > 0
        res = analyzer.analyze("f", domain="am", assume_handler=handler)
        assert not res.stats["from_cache"]  # handler has no cache_tag
        assert len(calls) == 2 * first

    def test_lru_eviction(self):
        cache = SummaryCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))  # refresh a
        cache.put(("c",), 3)  # evicts b
        assert cache.get(("a",)) == 1
        assert cache.get(("b",)) is None
        assert cache.stats()["evictions"] == 1

    def test_disk_store_roundtrip(self, tmp_path):
        store = str(tmp_path / "summaries.json")
        cache = SummaryCache(store_path=store)
        analyzer = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }", cache=cache
        )
        baseline = analyzer.analyze("id", domain="am")
        assert cache.save() == 1

        cache2 = SummaryCache(store_path=store)
        assert cache2.disk_loads == 1
        analyzer2 = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }", cache=cache2
        )
        res = analyzer2.analyze("id", domain="am")
        assert res.stats["from_cache"]
        assert _fingerprint(res) == _fingerprint(baseline)

    def test_corrupt_store_ignored(self, tmp_path):
        store = tmp_path / "bad.json"
        store.write_text("{not json")
        cache = SummaryCache(store_path=str(store))
        assert len(cache) == 0
        assert cache.disk_errors == 1


# ---------------------------------------------------------------------------
# telemetry


class TestTelemetry:
    def test_counters_and_timers(self):
        tel = Telemetry()
        tel.count("x")
        tel.count("x", 2)
        with tel.phase("p"):
            pass
        report = tel.report()
        assert report["x"] == 3
        assert report["time.p"] >= 0
        assert "events" not in report  # not tracing

    def test_event_collection(self):
        tel = Telemetry(collect_events=True)
        tel.event("summary.grew", proc="f", dependents=2)
        assert tel.events[0]["event"] == "summary.grew"
        assert tel.events[0]["proc"] == "f"
        assert tel.report()["events"] == 1

    def test_jsonl_trace_file(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        analyzer = Analyzer.from_source(
            """
            proc callee(x: list) returns (r: list) { r = x; }
            proc main(x: list) returns (r: list) { r = callee(x); }
            """
        )
        res = analyzer.analyze(
            "main", domain="am", engine_opts=EngineOptions(trace_path=trace)
        )
        assert res.ok
        lines = [json.loads(l) for l in open(trace) if l.strip()]
        assert lines, "trace file is empty"
        kinds = {l["event"] for l in lines}
        assert "record.created" in kinds
        assert "summary.grew" in kinds
        seqs = [l["seq"] for l in lines]
        assert seqs == sorted(seqs)

    def test_result_stats_has_engine_counters(self):
        analyzer = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        res = analyzer.analyze("id", domain="am")
        assert res.stats["records"] == 2  # NULL and non-NULL entry shapes
        assert res.stats["records.created"] == 2
        assert res.stats["steps"] > 0
        assert res.stats["scheduler"]["policy"] == "scc"
        assert "cache" in res.stats
        assert "time.fixpoint" in res.stats


# ---------------------------------------------------------------------------
# budgets: structured exceptions and diagnostics


RECURSIVE_SRC = """
proc sumlen(x: list) returns (n: int) {
  local t: list;
  local m: int;
  if (x == NULL) { n = 0; }
  else { t = x->next; m = sumlen(t); n = m + 1; }
}
"""


class _GrowingDomain:
    """A stub domain whose widening never stabilizes: every widen returns a
    strictly larger value, modelling an entry widening that livelocks."""

    def is_bottom(self, value):
        return False

    def leq(self, a, b):
        return a <= b

    def join(self, a, b):
        return max(a, b)

    def widen(self, a, b):
        return max(a, b) + 1

    def rename_words(self, value, mapping):
        return value

    def top(self):
        return 0


class TestBudgets:
    def test_record_iteration_budget_is_diagnostic(self):
        analyzer = Analyzer.from_source(RECURSIVE_SRC)
        res = analyzer.analyze(
            "sumlen",
            domain="am",
            engine_opts=EngineOptions(max_record_iterations=1, use_cache=False),
        )
        assert not res.ok
        diag = res.diagnostics[0]
        assert diag.kind == "record_iterations"
        assert diag.proc == "sumlen"
        assert diag.record_key is not None
        assert diag.limit == 1
        assert "sumlen" in str(diag)

    def test_budget_exception_carries_fields(self):
        analyzer = Analyzer.from_source(RECURSIVE_SRC)
        engine = Engine(
            analyzer.icfg,
            MultisetDomain(),
            opts=EngineOptions(max_record_iterations=1, use_cache=False),
        )
        with pytest.raises(AnalysisBudgetExceeded) as exc_info:
            engine.analyze("sumlen")
        exc = exc_info.value
        assert exc.kind == "record_iterations"
        assert exc.proc == "sumlen"
        assert exc.limit == 1
        assert exc.to_dict()["proc"] == "sumlen"

    def test_global_step_budget_is_structured(self):
        analyzer = Analyzer.from_source(RECURSIVE_SRC)
        res = analyzer.analyze(
            "sumlen",
            domain="am",
            max_steps=1,
            engine_opts=EngineOptions(use_cache=False),
        )
        assert not res.ok
        assert res.diagnostics[0].kind == "global_steps"
        assert res.diagnostics[0].limit == 1

    def test_wall_clock_budget_is_structured(self):
        analyzer = Analyzer.from_source(RECURSIVE_SRC)
        res = analyzer.analyze(
            "sumlen",
            domain="am",
            max_seconds=0.0,  # expires on the first step
            engine_opts=EngineOptions(use_cache=False),
        )
        assert not res.ok
        assert res.diagnostics[0].kind == "wall_clock"
        assert res.diagnostics[0].limit == 0.0

    def test_entry_widening_livelock_is_bounded(self):
        """Regression: resetting record.iterations on entry growth used to
        defeat the iteration budget when the entry widening never
        stabilized; the monotone entry_widenings counter bounds it."""
        analyzer = Analyzer.from_source(RECURSIVE_SRC)
        domain = _GrowingDomain()
        engine = Engine(
            analyzer.icfg,
            domain,
            opts=EngineOptions(max_entry_widenings=3, use_cache=False),
        )
        graph = HeapGraph.empty(["x"])
        record = engine.get_record("sumlen", AbstractHeap(graph, 0))
        # Each call brings a strictly larger entry; the widening grows it
        # further, so the entry never stabilizes.  iterations is reset on
        # every growth (the seed behavior) but entry_widenings is monotone.
        with pytest.raises(AnalysisBudgetExceeded) as exc_info:
            for step in range(10):
                engine.get_record("sumlen", AbstractHeap(graph, record.entry.value + 1))
        exc = exc_info.value
        assert exc.kind == "entry_widenings"
        assert exc.proc == "sumlen"
        assert exc.limit == 3
        assert record.entry_widenings == 4  # monotone, never reset
        assert record.iterations == 0  # still reset per entry growth


# ---------------------------------------------------------------------------
# equivalence integration


def test_equivalence_reports_cache_stats():
    """check_equivalence analyzes each procedure in AM and then repeats the
    AM pass inside the strengthened analysis; the analyzer's summary cache
    collapses the repeats and the accounting lands on result.stats.

    ``init`` keeps this fast (sorting-class AU analyses take minutes); its
    verdict is rightly negative — init overwrites the data, so multiset
    preservation cannot be derived — but all four analysis passes run.
    """
    from repro.core.equivalence import check_equivalence

    analyzer = Analyzer(benchmark_program())
    res = check_equivalence(analyzer, "init", "init")
    assert not res.equivalent
    assert res.detail == "multiset preservation not derived"
    assert res.stats is not None
    assert res.stats["cache"]["hits"] > 0
