"""Unit tests for the AU domain and the split#/concat# engine (paper §3.2, §4)."""

from repro.datawords import terms as T
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron


def v(name):
    return LinExpr.var(name)


def au(*patterns):
    return UniversalDomain(pattern_set(*patterns))


def all1_body(word, *constraints):
    return GuardInstance("ALL1", (word,)), Polyhedron(constraints)


class TestLattice:
    def setup_method(self):
        self.d = au("P1")

    def test_top_bottom(self):
        assert not self.d.is_bottom(self.d.top())
        assert self.d.is_bottom(self.d.bottom())

    def test_bottom_via_contradictory_E(self):
        val = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.length("x")), 0))
            .meet_constraints([Constraint.ge(v(T.length("x")), 1)])
        )
        assert self.d.is_bottom(val)

    def test_leq_on_E(self):
        strong = UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("x")), 3)))
        weak = UniversalValue(Polyhedron.of(Constraint.ge(v(T.hd("x")), 0)))
        assert self.d.leq(strong, weak)
        assert not self.d.leq(weak, strong)

    def test_leq_on_clause(self):
        gi, body = all1_body("x", Constraint.eq(v(T.elem("x", "y1")), 0))
        strong = UniversalValue(Polyhedron.top(), {gi: body})
        weak_gi, weak_body = all1_body(
            "x", Constraint.ge(v(T.elem("x", "y1")), 0)
        )
        weak = UniversalValue(Polyhedron.top(), {weak_gi: weak_body})
        assert self.d.leq(strong, weak)
        assert not self.d.leq(weak, strong)

    def test_leq_vacuous_clause_on_left(self):
        # len(x) = 1 makes ALL1(x) vacuous: any body is entailed.
        E = Polyhedron.of(Constraint.eq(v(T.length("x")), 1))
        left = UniversalValue(E)
        gi, body = all1_body("x", Constraint.eq(v(T.elem("x", "y1")), 42))
        right = UniversalValue(Polyhedron.top(), {gi: body})
        assert self.d.leq(left, right)

    def test_leq_uses_E_context_for_bodies(self):
        # E: hd(x) = 5; clause body x[y] = hd(x); target body x[y] = 5.
        gi = GuardInstance("ALL1", ("x",))
        left = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.hd("x")), 5)),
            {gi: Polyhedron.of(
                Constraint.eq(v(T.elem("x", "y1")), v(T.hd("x")))
            )},
        )
        right = UniversalValue(
            Polyhedron.top(),
            {gi: Polyhedron.of(Constraint.eq(v(T.elem("x", "y1")), 5))},
        )
        assert self.d.leq(left, right)

    def test_join_of_E(self):
        a = UniversalValue(Polyhedron.of(Constraint.eq(v(T.length("x")), 1)))
        b = UniversalValue(Polyhedron.of(Constraint.eq(v(T.length("x")), 2)))
        j = self.d.join(a, b)
        assert j.E.entails(Constraint.ge(v(T.length("x")), 1))
        assert j.E.entails(Constraint.le(v(T.length("x")), 2))

    def test_join_vacuity_keeps_other_body(self):
        # Side a: singleton list (clause vacuous).  Side b: all zeros.
        a = UniversalValue(Polyhedron.of(Constraint.eq(v(T.length("x")), 1)))
        gi, body = all1_body("x", Constraint.eq(v(T.elem("x", "y1")), 0))
        b = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.length("x")), 2)), {gi: body}
        )
        j = self.d.join(a, b)
        assert gi in j.clauses
        assert j.clauses[gi].entails(Constraint.eq(v(T.elem("x", "y1")), 0))

    def test_join_bodies(self):
        gi = GuardInstance("ALL1", ("x",))
        E = Polyhedron.of(Constraint.ge(v(T.length("x")), 2))
        a = UniversalValue(
            E, {gi: Polyhedron.of(Constraint.eq(v(T.elem("x", "y1")), 1))}
        )
        b = UniversalValue(
            E, {gi: Polyhedron.of(Constraint.eq(v(T.elem("x", "y1")), 2))}
        )
        j = self.d.join(a, b)
        assert j.clauses[gi].entails(Constraint.ge(v(T.elem("x", "y1")), 1))
        assert j.clauses[gi].entails(Constraint.le(v(T.elem("x", "y1")), 2))

    def test_widen_stabilizes(self):
        gi = GuardInstance("ALL1", ("x",))
        E1 = Polyhedron.of(Constraint.le(v(T.length("x")), 2))
        E2 = Polyhedron.of(Constraint.le(v(T.length("x")), 3))
        body = Polyhedron.of(Constraint.ge(v(T.elem("x", "y1")), 0))
        a = UniversalValue(E1, {gi: body})
        b = UniversalValue(E2, {gi: body})
        w = self.d.widen(a, b)
        assert not w.E.entails(Constraint.le(v(T.length("x")), 3))
        assert w.clauses[gi].entails(Constraint.ge(v(T.elem("x", "y1")), 0))


class TestVocabulary:
    def setup_method(self):
        self.d = au("P1")

    def test_rename(self):
        gi, body = all1_body("x", Constraint.eq(v(T.elem("x", "y1")), 0))
        val = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.hd("x")), 0)), {gi: body}
        )
        out = self.d.rename_words(val, {"x": "z"})
        assert out.E.entails(Constraint.eq(v(T.hd("z")), 0))
        new_gi = GuardInstance("ALL1", ("z",))
        assert new_gi in out.clauses
        assert out.clauses[new_gi].entails(
            Constraint.eq(v(T.elem("z", "y1")), 0)
        )

    def test_project_words(self):
        gi, body = all1_body("x", Constraint.eq(v(T.elem("x", "y1")), 0))
        val = UniversalValue(
            Polyhedron.of(
                Constraint.eq(v(T.hd("x")), v(T.hd("z")))
            ),
            {gi: body},
        )
        out = self.d.project_words(val, ["x"])
        assert T.hd("x") not in out.E.support()
        assert not out.clauses

    def test_project_keeps_consequences(self):
        val = UniversalValue(
            Polyhedron.of(
                Constraint.eq(v(T.hd("x")), v(T.hd("y"))),
                Constraint.eq(v(T.hd("y")), v(T.hd("z"))),
            )
        )
        out = self.d.project_words(val, ["y"])
        assert out.E.entails(Constraint.eq(v(T.hd("x")), v(T.hd("z"))))

    def test_forget_data(self):
        val = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.hd("x")), v("d")))
        )
        out = self.d.forget_data(val, ["d"])
        assert "d" not in out.E.support()

    def test_add_singleton(self):
        out = self.d.add_singleton_word(self.d.top(), "x")
        assert out.E.entails(Constraint.eq(v(T.length("x")), 1))


class TestCopyEquality:
    def test_eq_copy_entails_pointwise(self):
        d = au("P=")
        val = d.add_word_copy_eq(d.top(), "x", "x0")
        assert val.E.entails(Constraint.eq(v(T.hd("x")), v(T.hd("x0"))))
        assert val.E.entails(
            Constraint.eq(v(T.length("x")), v(T.length("x0")))
        )
        gi = GuardInstance("EQ2", ("x", "x0"))
        assert gi in val.clauses

    def test_eq_copy_satisfied_by_equal_words(self):
        d = au("P=")
        val = d.add_word_copy_eq(d.top(), "x", "x0")
        assert d.satisfied_by(val, {"x": [1, 2, 3], "x0": [1, 2, 3]}, {})
        assert not d.satisfied_by(val, {"x": [1, 2, 3], "x0": [1, 2, 4]}, {})
        assert not d.satisfied_by(val, {"x": [1, 2], "x0": [1, 2, 3]}, {})


class TestSplit:
    def test_split_basic_lengths(self):
        d = au("P1")
        val = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.length("x")), 5))
        )
        out = d.split(val, "x", "t", all_words=["x"])
        assert out.E.entails(Constraint.eq(v(T.length("x")), 1))
        assert out.E.entails(Constraint.eq(v(T.length("t")), 4))

    def test_split_infeasible_for_singleton(self):
        d = au("P1")
        val = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.length("x")), 1))
        )
        out = d.split(val, "x", "t", all_words=["x"])
        assert d.is_bottom(out)

    def test_split_propagates_all1_to_new_head(self):
        # forall y in tl(x). x[y] = 7, hd(x) = 7 --> hd(t) = 7 after split.
        d = au("P1")
        gi, body = all1_body("x", Constraint.eq(v(T.elem("x", "y1")), 7))
        val = UniversalValue(
            Polyhedron.of(
                Constraint.eq(v(T.hd("x")), 7),
                Constraint.ge(v(T.length("x")), 2),
            ),
            {gi: body},
        )
        out = d.split(val, "x", "t", all_words=["x"])
        assert out.E.entails(Constraint.eq(v(T.hd("t")), 7))
        new_gi = GuardInstance("ALL1", ("t",))
        assert new_gi in out.clauses
        assert out.clauses[new_gi].entails(
            Constraint.eq(v(T.elem("t", "y1")), 7)
        )

    def test_split_keeps_sortedness(self):
        d = au("P2")
        ord2 = GuardInstance("ORD2", ("x",))
        all1 = GuardInstance("ALL1", ("x",))
        sorted_body = Polyhedron.of(
            Constraint.le(v(T.elem("x", "y1")), v(T.elem("x", "y2")))
        )
        hd_body = Polyhedron.of(
            Constraint.le(v(T.hd("x")), v(T.elem("x", "y1")))
        )
        val = UniversalValue(
            Polyhedron.of(Constraint.ge(v(T.length("x")), 2)),
            {ord2: sorted_body, all1: hd_body},
        )
        out = d.split(val, "x", "t", all_words=["x"])
        # hd(x) <= hd(t): head of list <= head of tail.
        assert out.E.entails(Constraint.le(v(T.hd("x")), v(T.hd("t"))))
        new_ord2 = GuardInstance("ORD2", ("t",))
        assert new_ord2 in out.clauses
        assert out.clauses[new_ord2].entails(
            Constraint.le(v(T.elem("t", "y1")), v(T.elem("t", "y2")))
        )
        # hd(t) <= every element of tl(t).
        new_all1 = GuardInstance("ALL1", ("t",))
        assert new_all1 in out.clauses
        assert out.clauses[new_all1].entails(
            Constraint.le(v(T.hd("t")), v(T.elem("t", "y1")))
        )

    def test_split_keeps_equality_with_untouched_copy(self):
        d = au("P=")
        val = d.add_word_copy_eq(d.top(), "x", "z")
        val = d.meet_constraint(
            val, Constraint.ge(v(T.length("x")), 2)
        )
        out = d.split(val, "x", "t", all_words=["x", "z"])
        # hd preserved; tail suffix-aligned with z; anchor for hd(t).
        assert out.E.entails(Constraint.eq(v(T.hd("x")), v(T.hd("z"))))
        suf = GuardInstance("SUF2", ("t", "z"))
        assert suf in out.clauses
        bef = GuardInstance("BEF2", ("t", "z"))
        assert bef in out.clauses
        yb = bef.posvars()[0]
        assert out.clauses[bef].entails(
            Constraint.eq(v(T.elem("z", yb)), v(T.hd("t")))
        )


class TestConcat:
    def test_concat_lengths_add(self):
        d = au("P1")
        val = UniversalValue(
            Polyhedron.of(
                Constraint.eq(v(T.length("x")), 2),
                Constraint.eq(v(T.length("t")), 3),
            )
        )
        out = d.concat(val, "x", ["x", "t"], all_words=["x", "t"])
        assert out.E.entails(Constraint.eq(v(T.length("x")), 5))

    def test_concat_all_equal_elements(self):
        # x = [7, 7...], t = [7, 7...]  -->  x·t all 7.
        d = au("P1")
        gx, bx = all1_body("x", Constraint.eq(v(T.elem("x", "y1")), 7))
        gt, bt = all1_body("t", Constraint.eq(v(T.elem("t", "y1")), 7))
        val = UniversalValue(
            Polyhedron.of(
                Constraint.eq(v(T.hd("x")), 7),
                Constraint.eq(v(T.hd("t")), 7),
            ),
            {gx: bx, gt: bt},
        )
        out = d.concat(val, "x", ["x", "t"], all_words=["x", "t"])
        gi = GuardInstance("ALL1", ("x",))
        assert gi in out.clauses
        assert out.clauses[gi].entails(Constraint.eq(v(T.elem("x", "y1")), 7))
        assert out.E.entails(Constraint.eq(v(T.hd("x")), 7))

    def test_concat_sortedness(self):
        # sorted x, sorted t, all of x <= hd(t), hd(t) <= all of t
        d = au("P2")
        ord_x = GuardInstance("ORD2", ("x",))
        ord_t = GuardInstance("ORD2", ("t",))
        all_x = GuardInstance("ALL1", ("x",))
        all_t = GuardInstance("ALL1", ("t",))
        cross = GuardInstance("CROSS2", ("x", "t"))
        val = UniversalValue(
            Polyhedron.of(
                Constraint.le(v(T.hd("x")), v(T.hd("t"))),
            ),
            {
                ord_x: Polyhedron.of(
                    Constraint.le(v(T.elem("x", "y1")), v(T.elem("x", "y2")))
                ),
                ord_t: Polyhedron.of(
                    Constraint.le(v(T.elem("t", "y1")), v(T.elem("t", "y2")))
                ),
                all_x: Polyhedron.of(
                    Constraint.le(v(T.hd("x")), v(T.elem("x", "y1"))),
                    Constraint.le(v(T.elem("x", "y1")), v(T.hd("t"))),
                ),
                all_t: Polyhedron.of(
                    Constraint.le(v(T.hd("t")), v(T.elem("t", "y1"))),
                ),
                cross: Polyhedron.of(
                    Constraint.le(v(T.elem("x", "y1")), v(T.elem("t", "y2")))
                ),
            },
        )
        out = d.concat(val, "x", ["x", "t"], all_words=["x", "t"])
        gi = GuardInstance("ORD2", ("x",))
        assert gi in out.clauses
        assert out.clauses[gi].entails(
            Constraint.le(v(T.elem("x", "y1")), v(T.elem("x", "y2")))
        )
        gi1 = GuardInstance("ALL1", ("x",))
        assert gi1 in out.clauses
        assert out.clauses[gi1].entails(
            Constraint.le(v(T.hd("x")), v(T.elem("x", "y1")))
        )

    def test_traversal_roundtrip_recovers_full_equality(self):
        """The crux of eq-preservation: split then re-fold keeps eq(x, z)."""
        d = au("P=")
        val = d.add_word_copy_eq(d.top(), "x", "z")
        val = d.meet_constraint(val, Constraint.ge(v(T.length("x")), 2))
        stepped = d.split(val, "x", "t", all_words=["x", "z"])
        back = d.concat(stepped, "x", ["x", "t"], all_words=["x", "t", "z"])
        assert back.E.entails(Constraint.eq(v(T.hd("x")), v(T.hd("z"))))
        assert back.E.entails(
            Constraint.eq(v(T.length("x")), v(T.length("z")))
        )
        eq = GuardInstance("EQ2", ("x", "z"))
        assert eq in back.clauses
        assert back.clauses[eq].entails(
            Constraint.eq(v(T.elem("x", "y1")), v(T.elem("z", "y2")))
        )


class TestDataAssign:
    def setup_method(self):
        self.d = au("P1")

    def test_assign_hd(self):
        val = UniversalValue(Polyhedron.of(Constraint.eq(v("d"), 4)))
        out = self.d.assign_hd(val, "x", v("d"))
        assert out.E.entails(Constraint.eq(v(T.hd("x")), 4))

    def test_assign_hd_havoc(self):
        val = UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("x")), 4)))
        out = self.d.assign_hd(val, "x", None)
        assert not out.E.entails(Constraint.eq(v(T.hd("x")), 4))

    def test_assign_hd_updates_clause_bodies(self):
        gi = GuardInstance("ALL1", ("x",))
        body = Polyhedron.of(
            Constraint.le(v(T.elem("x", "y1")), v(T.hd("x")))
        )
        val = UniversalValue(Polyhedron.top(), {gi: body})
        out = self.d.assign_hd(val, "x", None)
        assert gi not in out.clauses or T.hd("x") not in out.clauses[gi].support()

    def test_assign_data_increment(self):
        val = UniversalValue(Polyhedron.of(Constraint.eq(v("d"), 1)))
        out = self.d.assign_data(val, "d", v("d") + 1)
        assert out.E.entails(Constraint.eq(v("d"), 2))

    def test_meet_and_entails_constraint(self):
        val = self.d.meet_constraint(
            self.d.top(), Constraint.ge(v(T.hd("x")), 3)
        )
        assert self.d.entails_constraint(val, Constraint.ge(v(T.hd("x")), 0))
        assert not self.d.entails_constraint(
            val, Constraint.ge(v(T.hd("x")), 4)
        )


class TestEvaluation:
    def test_satisfied_all1(self):
        d = au("P1")
        gi, body = all1_body("x", Constraint.ge(v(T.elem("x", "y1")), 5))
        val = UniversalValue(Polyhedron.top(), {gi: body})
        assert d.satisfied_by(val, {"x": [0, 5, 9]}, {})
        assert not d.satisfied_by(val, {"x": [0, 4]}, {})

    def test_satisfied_sortedness(self):
        d = au("P2")
        gi = GuardInstance("ORD2", ("x",))
        body = Polyhedron.of(
            Constraint.le(v(T.elem("x", "y1")), v(T.elem("x", "y2")))
        )
        val = UniversalValue(Polyhedron.top(), {gi: body})
        assert d.satisfied_by(val, {"x": [9, 1, 2, 3]}, {})
        assert not d.satisfied_by(val, {"x": [0, 3, 2]}, {})

    def test_describe_mentions_guards(self):
        d = au("P1")
        gi, body = all1_body("x", Constraint.ge(v(T.elem("x", "y1")), 5))
        val = UniversalValue(Polyhedron.top(), {gi: body})
        assert "ALL1" in d.describe(val)
