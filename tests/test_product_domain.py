"""Tests for the partially reduced product AHS(AU) x AHS(AW) (paper §5.1)."""

from fractions import Fraction

import pytest

from repro.core.product import ProductDomain
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron

AU = UniversalDomain(pattern_set("P=", "P1"))
AM = MultisetDomain()


def v(name):
    return LinExpr.var(name)


@pytest.fixture
def product():
    return ProductDomain(AU, AM)


def ms_eq(a, b):
    return MultisetValue(
        [
            {
                T.mhd(a): Fraction(1),
                T.mtl(a): Fraction(1),
                T.mhd(b): Fraction(-1),
                T.mtl(b): Fraction(-1),
            }
        ]
    )


class TestLattice:
    def test_top_bottom(self, product):
        assert not product.is_bottom(product.top())
        assert product.is_bottom(product.bottom())

    def test_bottom_if_either_component(self, product):
        assert product.is_bottom((AU.bottom(), AM.top()))
        assert product.is_bottom((AU.top(), AM.bottom()))

    def test_leq_componentwise(self, product):
        strong = (
            UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("a")), 1))),
            AM.top(),
        )
        assert product.leq(strong, product.top())
        assert not product.leq(product.top(), strong)

    def test_join_meet(self, product):
        a = (
            UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("a")), 1))),
            AM.top(),
        )
        b = (
            UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("a")), 3))),
            AM.top(),
        )
        j = product.join(a, b)
        assert j[0].E.entails(Constraint.ge(v(T.hd("a")), 1))
        m = product.meet(a, b)
        assert product.is_bottom(m) or m[0].E.is_bottom()


class TestReduction:
    def test_reduce_imports_multiset_facts(self, product):
        all_l = GuardInstance("ALL1", ("l",))
        u = UniversalValue(
            Polyhedron.of(Constraint.le(v(T.hd("l")), 5)),
            {all_l: Polyhedron.of(Constraint.le(v(T.elem("l", "y1")), 5))},
        )
        value = product.reduce((u, ms_eq("n", "l")))
        assert value[0].E.entails(Constraint.le(v(T.hd("n")), 5))

    def test_reduce_exports_head_equalities(self, product):
        u = UniversalValue(
            Polyhedron.of(Constraint.eq(v(T.hd("a")), v(T.hd("b"))))
        )
        value = product.reduce((u, AM.top()))
        assert AM.entails_row(
            value[1], {T.mhd("a"): Fraction(1), T.mhd("b"): Fraction(-1)}
        )

    def test_split_applies_reduction(self, product):
        # ms(x) = ms(z), all elements of z <= 5; splitting x exposes hd of
        # the tail, which σ should bound through the multiset link.
        all_z = GuardInstance("ALL1", ("z",))
        u = UniversalValue(
            Polyhedron.of(
                Constraint.le(v(T.hd("z")), 5),
                Constraint.ge(v(T.length("x")), 2),
            ),
            {all_z: Polyhedron.of(Constraint.le(v(T.elem("z", "y1")), 5))},
        )
        value = (u, ms_eq("x", "z"))
        out = product.split(value, "x", "t", all_words=["x", "z", "t"])
        assert out[0].E.entails(Constraint.le(v(T.hd("x")), 5))

    def test_universal_aux_imports_qf_part(self):
        aux_domain = UniversalDomain(pattern_set("P2"))
        product = ProductDomain(AU, aux_domain)
        u = AU.top()
        aux = UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("a")), 2)))
        out = product.reduce((u, aux))
        assert out[0].E.entails(Constraint.eq(v(T.hd("a")), 2))


class TestVocabulary:
    def test_rename_both(self, product):
        value = (
            UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("a")), 1))),
            ms_eq("a", "b"),
        )
        out = product.rename_words(value, {"a": "c"})
        assert out[0].E.entails(Constraint.eq(v(T.hd("c")), 1))
        assert T.mhd("c") in out[1].support()

    def test_project_both(self, product):
        value = (
            UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("a")), 1))),
            ms_eq("a", "b"),
        )
        out = product.project_words(value, ["a"])
        assert T.hd("a") not in out[0].E.support()
        assert T.mhd("a") not in out[1].support()

    def test_satisfied_by_requires_both(self, product):
        value = (
            UniversalValue(Polyhedron.of(Constraint.eq(v(T.hd("a")), 1))),
            ms_eq("a", "b"),
        )
        assert product.satisfied_by(value, {"a": [1, 2], "b": [2, 1]}, {})
        assert not product.satisfied_by(value, {"a": [2, 2], "b": [2, 2]}, {})
        assert not product.satisfied_by(value, {"a": [1, 2], "b": [1, 3]}, {})
