"""Tests for the LISL frontend: lexer, parser, typechecker, normalizer, CFG."""

import pytest

from repro.lang import ast as A
from repro.lang.benchlib import BENCHMARK_SOURCE, TABLE1, benchmark_program
from repro.lang.cfg import (
    OpAssignData,
    OpAssignPtr,
    OpAssumeData,
    OpAssumePtr,
    OpCall,
    OpStoreData,
    OpStoreNext,
    build_cfg,
    build_icfg,
)
from repro.lang.lexer import LexError, tokenize
from repro.lang.normalize import normalize_program
from repro.lang.parser import ParseError, parse_program
from repro.lang.typecheck import TypeError_, typecheck_program


def pipeline(source):
    return normalize_program(typecheck_program(parse_program(source)))


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("proc f(x: list) returns (y: int) { y = 1; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "kw"
        assert tokens[-1].kind == "eof"

    def test_arrow_token(self):
        tokens = tokenize("p->next")
        assert [t.text for t in tokens[:3]] == ["p", "->", "next"]

    def test_comments_skipped(self):
        tokens = tokenize("// comment\nx /* block\n comment */ y")
        assert [t.text for t in tokens if t.kind == "id"] == ["x", "y"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* oops")


class TestParser:
    def test_simple_procedure(self):
        prog = parse_program(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
        assert prog.names() == ["id"]
        proc = prog.proc("id")
        assert [p.name for p in proc.inputs] == ["x"]
        assert [p.name for p in proc.outputs] == ["r"]
        assert isinstance(proc.body[0], A.Assign)

    def test_grouped_param_declaration(self):
        prog = parse_program(
            "proc f(a, b: list, n: int) returns (r: list) { r = a; }"
        )
        params = prog.proc("f").inputs
        assert [(p.name, p.type) for p in params] == [
            ("a", "list"),
            ("b", "list"),
            ("n", "int"),
        ]

    def test_locals(self):
        prog = parse_program(
            "proc f(x: list) returns (r: list) { local a, b: list; local i: int; r = x; }"
        )
        locs = prog.proc("f").locals
        assert [(p.name, p.type) for p in locs] == [
            ("a", "list"),
            ("b", "list"),
            ("i", "int"),
        ]

    def test_field_statements(self):
        prog = parse_program(
            "proc f(x: list, v: int) returns (r: list) {"
            " x->data = v + 1; x->next = NULL; r = x; }"
        )
        body = prog.proc("f").body
        assert isinstance(body[0], A.StoreData)
        assert isinstance(body[1], A.StoreNext)

    def test_call_forms(self):
        prog = parse_program(
            "proc g(x: list) returns (r: list) { r = x; }"
            "proc f(x: list) returns (r: list) {"
            " local a, b: list; a = g(x); (a, b) = h(x); r = a; }"
            "proc h(x: list) returns (p: list, q: list) { p = x; q = x; }"
        )
        body = prog.proc("f").body
        assert isinstance(body[0], A.Call) and body[0].targets == ("a",)
        assert isinstance(body[1], A.Call) and body[1].targets == ("a", "b")

    def test_if_else_chain(self):
        prog = parse_program(
            "proc f(n: int) returns (r: int) {"
            " if (n < 0) { r = 0; } else if (n < 10) { r = 1; } else { r = 2; } }"
        )
        stmt = prog.proc("f").body[0]
        assert isinstance(stmt, A.If)
        assert isinstance(stmt.else_body[0], A.If)

    def test_while_with_complex_cond(self):
        prog = parse_program(
            "proc f(x: list) returns (r: int) { local c: list;"
            " c = x; r = 0; while (c != NULL && c->next != NULL) { c = c->next; } }"
        )
        stmt = prog.proc("f").body[2]
        assert isinstance(stmt, A.While)
        assert isinstance(stmt.cond, A.BoolOp)

    def test_spec_formulas(self):
        prog = parse_program(
            "proc f(x: list, y: list) returns (r: list) {"
            " assume sorted(x) && ms_eq(x, y); assert equal(x, y) ; r = x; }"
        )
        body = prog.proc("f").body
        assert isinstance(body[0], A.Assume)
        assert [a.kind for a in body[0].formula.atoms] == ["sorted", "ms_eq"]
        assert isinstance(body[1], A.Assert)

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError) as err:
            parse_program("proc f() returns (r: int) {\n r = ; }")
        assert "line 2" in str(err.value)

    def test_benchmark_source_parses(self):
        prog = parse_program(BENCHMARK_SOURCE)
        names = set(prog.names())
        for entry in TABLE1:
            assert entry.name in names


class TestTypecheck:
    def test_undeclared_variable(self):
        with pytest.raises(TypeError_):
            typecheck_program(
                parse_program("proc f() returns (r: int) { r = zz; }")
            )

    def test_type_mismatch_assign(self):
        with pytest.raises(TypeError_):
            typecheck_program(
                parse_program(
                    "proc f(x: list) returns (r: int) { r = x; }"
                )
            )

    def test_nonlinear_rejected(self):
        with pytest.raises(TypeError_):
            typecheck_program(
                parse_program(
                    "proc f(a: int, b: int) returns (r: int) { r = a * b; }"
                )
            )

    def test_linear_multiplication_accepted(self):
        typecheck_program(
            parse_program(
                "proc f(a: int) returns (r: int) { r = 2 * a + 1; }"
            )
        )

    def test_pointer_comparison_reclassified(self):
        prog = typecheck_program(
            parse_program(
                "proc f(x: list, y: list) returns (r: int) {"
                " r = 0; if (x == y) { r = 1; } }"
            )
        )
        cond = prog.proc("f").body[1].cond
        assert isinstance(cond, A.PtrCmp)

    def test_pointer_order_comparison_rejected(self):
        with pytest.raises(TypeError_):
            typecheck_program(
                parse_program(
                    "proc f(x: list, y: list) returns (r: int) {"
                    " r = 0; if (x < y) { r = 1; } }"
                )
            )

    def test_call_arity_mismatch(self):
        with pytest.raises(TypeError_):
            typecheck_program(
                parse_program(
                    "proc g(x: list) returns (r: list) { r = x; }"
                    "proc f(x: list) returns (r: list) { r = g(x, x); }"
                )
            )

    def test_next_of_next_rejected(self):
        with pytest.raises(TypeError_):
            typecheck_program(
                parse_program(
                    "proc f(x: list, y: list) returns (r: list) {"
                    " x->next = y->next; r = x; }"
                )
            )

    def test_benchmark_typechecks(self):
        typecheck_program(parse_program(BENCHMARK_SOURCE))


class TestNormalize:
    def test_call_args_lifted(self):
        prog = pipeline(
            "proc g(x: list, n: int) returns (r: list) { r = x; }"
            "proc f(x: list) returns (r: list) { r = g(x->next, 3 + 1); }"
        )
        body = prog.proc("f").body
        assert isinstance(body[0], A.Assign)
        assert isinstance(body[1], A.Assign)
        call = body[2]
        assert isinstance(call, A.Call)
        assert all(isinstance(a, A.Var) for a in call.args)

    def test_plain_args_untouched(self):
        prog = pipeline(
            "proc g(x: list) returns (r: list) { r = x; }"
            "proc f(x: list) returns (r: list) { r = g(x); }"
        )
        assert len(prog.proc("f").body) == 1


class TestCFG:
    def test_straightline(self):
        prog = pipeline(
            "proc f(x: list, v: int) returns (r: list) {"
            " x->data = v; r = x; }"
        )
        cfg = build_cfg(prog.proc("f"))
        ops = [e.op for e in cfg.edges]
        assert any(isinstance(op, OpStoreData) for op in ops)
        assert any(isinstance(op, OpAssignPtr) for op in ops)
        assert cfg.exit >= 0

    def test_while_creates_widen_point(self):
        prog = pipeline(
            "proc f(x: list) returns (r: int) { local c: list;"
            " c = x; r = 0; while (c != NULL) { c = c->next; r = r + 1; } }"
        )
        cfg = build_cfg(prog.proc("f"))
        assert len(cfg.widen_points) == 1

    def test_condition_with_deref_gets_temp(self):
        prog = pipeline(
            "proc f(x: list) returns (r: int) { r = 0;"
            " if (x->next == NULL) { r = 1; } }"
        )
        cfg = build_cfg(prog.proc("f"))
        temp_assigns = [
            e.op
            for e in cfg.edges
            if isinstance(e.op, OpAssignPtr) and e.op.kind == "next"
        ]
        assert temp_assigns  # lifted dereference
        assert any(v.startswith("$c") for v in cfg.pointer_vars)

    def test_data_neq_splits_into_two_edges(self):
        prog = pipeline(
            "proc f(a: int, b: int) returns (r: int) { r = 0;"
            " if (a != b) { r = 1; } }"
        )
        cfg = build_cfg(prog.proc("f"))
        thens = [
            e.op
            for e in cfg.edges
            if isinstance(e.op, OpAssumeData) and e.op.op in ("<", ">")
        ]
        assert len(thens) == 2

    def test_short_circuit_and(self):
        prog = pipeline(
            "proc f(x: list) returns (r: int) { local c: list; r = 0;"
            " c = x; while (c != NULL && c->next != NULL) { c = c->next; } }"
        )
        cfg = build_cfg(prog.proc("f"))
        # the && generates two pointer tests
        assumes = [e.op for e in cfg.edges if isinstance(e.op, OpAssumePtr)]
        assert len(assumes) >= 4

    def test_icfg_recursion_detection(self):
        icfg = build_icfg(benchmark_program())
        recursive = icfg.recursive_procs()
        assert "quicksort" in recursive
        assert "mergesort" in recursive
        assert "init_rec" in recursive
        assert "create" not in recursive

    def test_icfg_call_graph(self):
        icfg = build_icfg(benchmark_program())
        graph = icfg.call_graph()
        assert "qsplit" in graph["quicksort"]
        assert "clone" in graph["quicksort"]
        assert "merge" in graph["mergesort"]

    def test_every_benchmark_builds(self):
        icfg = build_icfg(benchmark_program())
        for entry in TABLE1:
            cfg = icfg.cfg(entry.name)
            assert cfg.exit >= 0
            assert cfg.edges
