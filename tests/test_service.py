"""Tests of the incremental analysis service (``repro.service``).

Four layers:

- **depindex**: body hashes ignore formatting noise, cone fingerprints
  invalidate exactly the upward cone of an edit, SCC granularity;
- **incremental correctness** (the headline property): for every corpus
  program and a scripted single-procedure edit, a warm re-analysis
  through a session yields summary hashes *identical* to a cold
  sequential run of the edited program, while re-analyzing strictly
  fewer SCC shards (when the program has more than one);
- **diagnostics**: assertion verdicts (pass / fail / budget-exceeded)
  routed through the shared encoder keep stable rule ids and source
  line numbers;
- **daemon robustness**: protocol errors, bounded-queue rejection, a
  SIGKILLed worker mid-request and an over-budget request all return
  structured error diagnostics without taking the server down.
"""

import json
import os
import signal
import socket
import time
from pathlib import Path

import pytest

from repro.core.api import Analyzer
from repro.service import protocol as P
from repro.service.client import ServiceClient, parse_address
from repro.service.depindex import ConeKeyedStore, DependencyIndex, body_hash
from repro.service.diagnostics import (
    RULE_ASSERTION,
    envelope_records,
    from_assertions,
    run_envelope,
)
from repro.service.server import AnalysisServer, ServerConfig

CORPUS = Path(__file__).parent / "corpus"
SLOW_ENTRIES = {"gen_seed17.lisl"}  # mirrors tests/test_parallel.py


CHAIN = """
proc leaf(x: list) returns (r: list) { r = x; }
proc mid(x: list) returns (r: list) { r = leaf(x); }
proc top(x: list) returns (r: list) { r = mid(x); }
proc other(x: list) returns (r: list) { r = x; }
"""


def edit_procedure(source: str, proc: str) -> str:
    """A scripted single-procedure edit: declare a fresh local at the top
    of the procedure (the grammar wants all locals first) and assign it
    at the end of the body, changing this procedure's normalized body and
    nothing else."""
    at = source.index(f"proc {proc}(")
    open_brace = source.index("{", at)
    depth, close_brace = 0, -1
    for i in range(open_brace, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                close_brace = i
                break
    assert close_brace > open_brace, f"unbalanced body for {proc}"
    return (
        source[: open_brace + 1]
        + " local __edit: int; "
        + source[open_brace + 1 : close_brace]
        + " __edit = 1; "
        + source[close_brace:]
    )


def _top_proc(analyzer) -> str:
    """A procedure no other procedure calls (exists in every program);
    editing it dirties exactly its own SCC."""
    graph = analyzer.icfg.call_graph()
    called = {callee for callees in graph.values() for callee in callees}
    tops = sorted(set(graph) - called) or sorted(graph)
    return tops[0]


def _hashes(report):
    return {tid: out.summary_hashes for tid, out in report.outputs.items()}


def _batch_hashes(batch_report):
    out = {}
    for outcome in batch_report.outcomes:
        assert outcome.status == "ok", outcome.describe()
        out[outcome.task_id] = outcome.result.summary_hashes
    return out


# -- dependency index -----------------------------------------------------------


class TestDependencyIndex:
    def test_body_hash_ignores_formatting(self):
        a = Analyzer.from_source("proc f(x: list) returns (r: list) { r = x; }")
        b = Analyzer.from_source(
            "proc f(x: list)   returns (r: list)\n{\n  r = x;\n}"
        )
        assert body_hash(a.icfg.cfg("f")) == body_hash(b.icfg.cfg("f"))

    def test_cone_fingerprints_stable_across_builds(self):
        i1 = DependencyIndex.build(Analyzer.from_source(CHAIN).icfg)
        i2 = DependencyIndex.build(Analyzer.from_source(CHAIN).icfg)
        assert i1.cone_fingerprints() == i2.cone_fingerprints()

    def test_edit_dirties_exactly_the_upward_cone(self):
        old = DependencyIndex.build(Analyzer.from_source(CHAIN).icfg)
        new = DependencyIndex.build(
            Analyzer.from_source(edit_procedure(CHAIN, "leaf")).icfg
        )
        delta = old.diff(new)
        assert delta.changed == {"leaf"}
        assert delta.dirty == {"leaf", "mid", "top"}  # upward closure
        assert delta.clean == {"other"}  # siblings untouched

    def test_edit_of_top_proc_dirties_only_itself(self):
        old = DependencyIndex.build(Analyzer.from_source(CHAIN).icfg)
        new = DependencyIndex.build(
            Analyzer.from_source(edit_procedure(CHAIN, "top")).icfg
        )
        delta = old.diff(new)
        assert delta.dirty == {"top"}
        assert delta.clean == {"leaf", "mid", "other"}

    def test_added_and_removed_procs(self):
        old = DependencyIndex.build(Analyzer.from_source(CHAIN).icfg)
        extended = CHAIN + "\nproc extra(x: list) returns (r: list) { r = x; }"
        new = DependencyIndex.build(Analyzer.from_source(extended).icfg)
        delta = old.diff(new)
        assert delta.added == {"extra"} and delta.dirty == {"extra"}
        back = new.diff(old)
        assert back.removed == {"extra"} and back.dirty == set()

    def test_recursive_scc_shares_one_cone(self):
        src = """
        proc even(x: list) returns (r: list) { r = odd(x); }
        proc odd(x: list) returns (r: list) { r = even(x); }
        """
        index = DependencyIndex.build(Analyzer.from_source(src).icfg)
        assert index.cone_fingerprint("even") == index.cone_fingerprint("odd")
        assert index.scc_of("even") == ("even", "odd")

    def test_cone_keyed_store_rewrites_program_component(self):
        class Spy:
            def __init__(self):
                self.keys = []

            def get(self, key):
                self.keys.append(key)
                return None

            def put(self, key, payload):
                self.keys.append(key)

            def stats(self):
                return {}

        spy = Spy()
        store = ConeKeyedStore(spy, {"f": "cone-of-f"})
        key = ("program-fp", "f", "am", 0, None, None)
        store.get(key)
        store.put(key, ["payload"])
        assert spy.keys == [("cone-of-f", "f", "am", 0, None, None)] * 2
        # Unknown procs pass through unchanged.
        other = ("program-fp", "ghost", "am", 0, None, None)
        store.get(other)
        assert spy.keys[-1] == other


# -- incremental correctness ----------------------------------------------------


def _corpus_sources():
    params = []
    for path in sorted(CORPUS.glob("*.lisl")):
        marks = [pytest.mark.slow] if path.name in SLOW_ENTRIES else []
        params.append(pytest.param(path, marks=marks, id=path.name))
    return params


@pytest.mark.parametrize("path", _corpus_sources())
def test_corpus_warm_equals_cold(path, tmp_path):
    """Warm re-analysis after a scripted edit: hash-identical to a cold
    sequential run of the edited program, strictly fewer SCC shards."""
    from repro.fuzz.__main__ import load_corpus_entry

    source = load_corpus_entry(path).source
    analyzer = Analyzer.from_source(source)
    proc = _top_proc(analyzer)
    edited = edit_procedure(source, proc)

    session = analyzer.open_session(store_dir=str(tmp_path / "store"))
    cold = session.analyze(domains=("am",))
    assert cold.ok
    assert cold.incremental["reused"] == 0

    session.update_source(edited)
    warm = session.analyze(domains=("am",))
    assert warm.ok

    baseline = Analyzer.from_source(edited).analyze_batch(
        domains=("am",), jobs=0
    )
    assert _hashes(warm) == _batch_hashes(baseline)

    total = warm.incremental["sccs_total"]
    analyzed = warm.incremental["sccs_analyzed"]
    if len(analyzer.icfg.cfgs) > 1:
        assert analyzed < total  # strictly fewer shards re-analyzed
    else:
        assert analyzed == total == 1
    assert proc + ".am" in warm.analyzed


def test_benchmark_warm_equals_cold_both_domains(tmp_path):
    """The Figures 4-6 roots, both domains, through the session."""
    from repro.lang.benchlib import BENCHMARK_SOURCE

    roots = ["create", "addfst", "delfst", "init", "qsplit", "quicksort"]
    analyzer = Analyzer.from_source(BENCHMARK_SOURCE)
    session = analyzer.open_session(store_dir=str(tmp_path / "store"))
    cold = session.analyze(procs=roots, domains=("am",))
    assert cold.ok

    edited = edit_procedure(BENCHMARK_SOURCE, "init")
    delta = session.update_source(edited)
    assert "init" in delta.changed
    warm = session.analyze(procs=roots, domains=("am",))
    assert warm.ok
    baseline = Analyzer.from_source(edited).analyze_batch(
        procs=roots, domains=("am",), jobs=0
    )
    assert _hashes(warm) == _batch_hashes(baseline)
    # init has no callers among the roots: only its shard re-analyzes.
    assert warm.analyzed == ["init.am"]
    assert len(warm.reused) == len(roots) - 1


def test_reverted_edit_rehits_store(tmp_path):
    """Editing and reverting must hit the cone-keyed store again."""
    session = Analyzer.from_source(CHAIN).open_session(
        store_dir=str(tmp_path / "store")
    )
    cold = session.analyze(domains=("am",))
    session.update_source(edit_procedure(CHAIN, "leaf"))
    session.analyze(domains=("am",))
    session.update_source(CHAIN)  # revert
    session.flush()  # drop retained outputs: force the store path
    back = session.analyze(domains=("am",))
    assert back.ok
    assert _hashes(back) == _hashes(cold)
    for task_id in back.analyzed:
        output = back.outputs[task_id]
        assert output.stats.get("from_cache"), task_id  # answered from store

    # A fresh session over the same store is warm from the start.
    other = Analyzer.from_source(CHAIN).open_session(
        store_dir=str(tmp_path / "store")
    )
    again = other.analyze(domains=("am",))
    assert _hashes(again) == _hashes(cold)
    assert all(
        again.outputs[tid].stats.get("from_cache") for tid in again.analyzed
    )


def test_session_pool_jobs_match_inline(tmp_path):
    """jobs=2 dispatch through the worker pool equals the inline run."""
    inline = Analyzer.from_source(CHAIN).open_session(
        store_dir=str(tmp_path / "a")
    ).analyze(domains=("am",), jobs=0)
    pooled = Analyzer.from_source(CHAIN).open_session(
        store_dir=str(tmp_path / "b")
    ).analyze(domains=("am",), jobs=2)
    assert inline.ok and pooled.ok
    assert _hashes(inline) == _hashes(pooled)


# -- diagnostics ----------------------------------------------------------------


ASSERT_SRC = """
proc f(n: int) returns (r: int) {
  r = n + 1;
  assert r > n;
  assert r > n + 1;
}
"""


class TestDiagnostics:
    def _check(self, source, proc, **kw):
        from repro.core.assertions import AssertionChecker

        analyzer = Analyzer.from_source(source)
        checker = AssertionChecker()
        result = analyzer.analyze(
            proc, domain="au", assume_handler=checker, **kw
        )
        return checker, result

    def test_pass_and_fail_records(self):
        checker, _ = self._check(ASSERT_SRC, "f")
        records = checker.diagnostics()
        assert [r.verdict for r in records] == ["pass", "fail"]
        assert all(r.rule_id == RULE_ASSERTION for r in records)
        assert [r.line for r in records] == [4, 5]  # source lines
        assert all(r.procedure == "f" for r in records)

    def test_rule_ids_and_lines_stable_across_runs(self):
        first = [r.to_json() for r in self._check(ASSERT_SRC, "f")[0].diagnostics()]
        second = [r.to_json() for r in self._check(ASSERT_SRC, "f")[0].diagnostics()]
        assert first == second

    def test_callee_asserts_carry_callee_proc_and_line(self):
        src = """
        proc callee(n: int) returns (r: int) {
          r = n;
          assert r == n;
        }
        proc caller(n: int) returns (r: int) {
          r = callee(n);
        }
        """
        checker, _ = self._check(src, "caller")
        records = checker.diagnostics()
        assert len(records) == 1
        assert records[0].procedure == "callee"
        assert records[0].line == 4

    def test_budget_exceeded_is_inconclusive(self):
        from repro.lang.benchlib import BENCHMARK_SOURCE
        from repro.service.diagnostics import from_engine_diagnostics

        analyzer = Analyzer.from_source(BENCHMARK_SOURCE)
        result = analyzer.analyze("mergesort", domain="au", max_seconds=0.05)
        assert not result.ok
        records = from_engine_diagnostics(result.diagnostics)
        assert records
        assert records[0].rule_id == "budget.wall_clock"
        assert records[0].verdict == "inconclusive"

    def test_envelope_counts_and_roundtrip(self):
        checker, _ = self._check(ASSERT_SRC, "f")
        envelope = run_envelope(checker.diagnostics(), stats={"domain": "au"})
        assert envelope["schema"] == "repro-diagnostics/1"
        (run,) = envelope["runs"]
        assert run["counts"] == {"pass": 1, "fail": 1}
        assert run["stats"] == {"domain": "au"}
        flat = envelope_records(envelope)
        assert len(flat) == 2 and flat[0]["ruleId"] == RULE_ASSERTION
        json.dumps(envelope)  # JSON-serializable end to end

    def test_aggregation_is_fail_any(self):
        from repro.core.assertions import AssertionOutcome

        outcomes = [
            AssertionOutcome("x > 0", True, 1, proc="f", line=3),
            AssertionOutcome("x > 0", False, 2, proc="f", line=3),
        ]
        (record,) = from_assertions(outcomes)
        assert record.verdict == "fail"
        assert record.witness["checks"] == 2


# -- protocol -------------------------------------------------------------------


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"verb": "analyze", "id": 7, "source": "proc f() {}"}
        assert P.decode_line(P.encode(message).rstrip(b"\n")) == message

    def test_malformed_line_rejected(self):
        with pytest.raises(P.ProtocolError):
            P.decode_line(b"{ torn")
        with pytest.raises(P.ProtocolError):
            P.decode_line(b'"not an object"')

    def test_unknown_verb_rejected(self):
        with pytest.raises(P.ProtocolError, match="unknown verb"):
            P.validate_request({"verb": "frobnicate"})

    def test_missing_fields_rejected(self):
        with pytest.raises(P.ProtocolError, match="source"):
            P.validate_request({"verb": "analyze"})
        with pytest.raises(P.ProtocolError, match="proc2"):
            P.validate_request(
                {"verb": "equivalence", "source": "", "proc1": "a"}
            )

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7341") == ("127.0.0.1", 7341)
        assert parse_address("/tmp/svc.sock") == "/tmp/svc.sock"
        assert parse_address("./svc.sock") == "./svc.sock"


# -- the daemon -----------------------------------------------------------------


@pytest.fixture
def server(tmp_path):
    """An in-process daemon on an ephemeral TCP port, inline job mode."""
    srv = AnalysisServer(
        ServerConfig(port=0, jobs=0, store_dir=str(tmp_path / "store"))
    )
    srv.start()
    yield srv
    if not srv.stopped.is_set():
        srv.stop()


def _client(srv) -> ServiceClient:
    _, (host, port) = srv.address
    return ServiceClient.connect_tcp(host, port)


class TestDaemon:
    def test_submit_edit_resubmit_cycle(self, server):
        with _client(server) as client:
            cold = client.analyze(CHAIN, domains=["am"])
            assert cold["ok"]
            assert cold["result"]["incremental"]["reused"] == 0
            cold_shards = cold["telemetry"]["sccs_analyzed"]

            edited = edit_procedure(CHAIN, "leaf")
            warm = client.analyze(edited, domains=["am"])
            assert warm["ok"]
            inc = warm["result"]["incremental"]
            assert inc["reused"] == 1  # 'other' untouched
            assert warm["telemetry"]["sccs_analyzed"] < cold_shards
            assert warm["result"]["delta"]["changed"] == ["leaf"]
            assert warm["result"]["delta"]["dirty"] == ["leaf", "mid", "top"]

            # Warm hashes == a cold run of the edited program.
            baseline = Analyzer.from_source(edited).analyze_batch(
                domains=("am",), jobs=0
            )
            assert warm["result"]["summary_hashes"] == {
                tid: [list(pair) for pair in hashes]
                for tid, hashes in _batch_hashes(baseline).items()
            }

    def test_assert_verdicts_over_the_wire(self, server):
        with _client(server) as client:
            response = client.check_asserts(ASSERT_SRC)
            assert response["ok"]
            records = response["result"]["results"]
            assert [r["verdict"] for r in records] == ["pass", "fail"]
            assert [r["line"] for r in records] == [4, 5]

    def test_status_flush_shutdown(self, server):
        with _client(server) as client:
            client.analyze(CHAIN, domains=["am"], program_id="p1")
            status = client.status()["result"]
            assert status["sessions"]["p1"]["procs"] == 4
            assert status["queue_limit"] == 16
            assert status["telemetry"]["requests.analyze"] == 1
            dropped = client.flush()["result"]["dropped"]
            assert dropped == 4
            assert client.shutdown()["ok"]
        assert server.stopped.wait(10)
        # The socket is really closed.
        _, (host, port) = server.address
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5).close()

    def test_bad_source_is_structured_error(self, server):
        with _client(server) as client:
            response = client.analyze("proc ) nonsense {", domains=["am"])
            assert not response["ok"]
            assert response["error"]["kind"] == "bad_request"
            # ... and the server keeps serving.
            assert client.ping()["ok"]

    def test_malformed_request_line_is_answered(self, server):
        _, (host, port) = server.address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            sock.sendall(b"{ not json\n")
            response = json.loads(sock.makefile("rb").readline())
            assert response["ok"] is False
            assert response["error"]["kind"] == "bad_request"
        finally:
            sock.close()

    def test_queue_full_rejection(self, server):
        # Park the dispatcher inside a job, then fill the bounded queue:
        # the next enqueue must be rejected immediately (backpressure),
        # not block the connection thread.
        entered, release = __import__("threading").Event(), __import__(
            "threading"
        ).Event()
        original = server._execute

        def gated(job):
            entered.set()
            release.wait(30)
            return original(job)

        server._execute = gated
        try:
            parked = _client(server)
            parked._sock.sendall(
                P.encode({"verb": "analyze", "id": 1, "source": CHAIN,
                          "domains": ["am"]})
            )
            assert entered.wait(10)  # dispatcher is now busy
            while True:
                try:
                    server.queue.put_nowait(None)
                except Exception:
                    break
            with _client(server) as client:
                response = client.analyze(CHAIN, domains=["am"])
                assert not response["ok"]
                assert response["error"]["kind"] == "queue_full"
                # Shed responses are uniform across the daemon and the
                # gateway: a stable queue.shed rule id plus a
                # retry_after_ms backoff hint.
                assert response["error"]["retry_after_ms"] >= 100
                records = envelope_records(response["diagnostics"])
                assert records[0]["ruleId"] == "queue.shed"
                assert records[0]["witness"]["retry_after_ms"] >= 100
        finally:
            release.set()
            server._execute = original
        # The parked request still completes normally.
        reply = json.loads(parked._fh.readline())
        assert reply["ok"]
        parked.close()


class TestDaemonPoolIsolation:
    """Robustness with real worker processes (jobs=1)."""

    @pytest.fixture
    def pool_server(self, tmp_path):
        srv = AnalysisServer(
            ServerConfig(
                port=0, jobs=1, store_dir=str(tmp_path / "store"),
                hard_grace=5.0,
            )
        )
        srv.start()
        yield srv
        if not srv.stopped.is_set():
            srv.stop()

    def test_sigkilled_worker_returns_structured_error(
        self, pool_server, monkeypatch
    ):
        import repro.service.jobs as jobs_mod
        import repro.service.server as server_mod

        def die(request):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(jobs_mod, "run_assert_request", die)
        monkeypatch.setattr(server_mod, "run_assert_request", die)
        with _client(pool_server) as client:
            response = client.check_asserts(ASSERT_SRC)
            assert not response["ok"]
            assert response["error"]["kind"] == "crashed"
            records = envelope_records(response["diagnostics"])
            assert records[0]["ruleId"] == "worker.crashed"
            monkeypatch.undo()
            # Server survives and the next request succeeds.
            again = client.check_asserts(ASSERT_SRC)
            assert again["ok"]
            assert [r["verdict"] for r in again["result"]["results"]] == [
                "pass",
                "fail",
            ]

    def test_over_budget_analyze_is_structured(self, pool_server):
        from repro.lang.benchlib import BENCHMARK_SOURCE

        with _client(pool_server) as client:
            response = client.analyze(
                BENCHMARK_SOURCE,
                procs=["mergesort"],
                domains=["au"],
                max_seconds=0.05,
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "budget"
            records = envelope_records(response["diagnostics"])
            assert any(r["ruleId"].startswith("budget.") for r in records)
            # Store is not corrupted: a normal request still works.
            ok = client.analyze(CHAIN, domains=["am"])
            assert ok["ok"]


# -- telemetry gauges -----------------------------------------------------------


def test_telemetry_gauges_in_report():
    from repro.engine.telemetry import Telemetry

    tel = Telemetry()
    tel.gauge("queue.depth", 3)
    tel.gauge("queue.depth", 1)  # last value wins
    assert tel.report()["gauge.queue.depth"] == 1
