"""Oracle tests: clean on shipped code, and -- crucially -- able to catch
deliberately injected soundness bugs (guards against a vacuously-passing
fuzzer)."""

import random
from fractions import Fraction

import pytest

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.fuzz.oracle import Oracle, OracleConfig
from repro.fuzz.progen import GenConfig, generate_program
from repro.lang.benchlib import benchmark_program
from repro.lang.typecheck import typecheck_program

AM_ONLY = OracleConfig(rounds=4, domains=("am",))


def test_oracle_clean_on_benchmark_procs():
    program = typecheck_program(benchmark_program())
    oracle = Oracle(AM_ONLY)
    rng = random.Random(7)
    for proc in ("addfst", "delfst", "mapadd"):
        views_list = [
            [
                [rng.randint(-5, 5) for _ in range(rng.randint(0, 4))]
                if p.type == "list"
                else rng.randint(-5, 5)
                for p in program.proc(proc).inputs
            ]
            for _ in range(4)
        ]
        findings = oracle.check_views(program, proc, views_list)
        assert findings == [], [f.describe() for f in findings]


@pytest.mark.parametrize("seed", range(6))
def test_oracle_clean_on_generated_programs(seed):
    program, root = generate_program(seed)
    findings = Oracle(AM_ONLY).check_program(program, root, seed)
    assert findings == [], [f.describe() for f in findings]


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6, 30))
def test_oracle_clean_on_generated_programs_slow(seed):
    program, root = generate_program(seed)
    findings = Oracle(OracleConfig(rounds=4)).check_program(program, root, seed)
    assert findings == [], [f.describe() for f in findings]


def _unsound_split(self, value, word, tail):
    """Mutant of ``unfold#``'s AM leg: keeps the stale ``mtl(word)`` rows
    (which describe the word *before* the head cell was peeled off) while
    still asserting the remaining head word is a singleton.  The stale
    rows are unsound constraints on the post-split state."""
    if value.is_bot:
        return value
    rows = list(value.rows)
    rows.append({T.mtl(word): Fraction(1)})
    return MultisetValue(rows)


MUTANT_ITERATION_BOUND = 25


def test_mutant_unsound_split_is_caught(monkeypatch):
    monkeypatch.setattr(MultisetDomain, "split", _unsound_split)
    oracle = Oracle(AM_ONLY)
    for seed in range(MUTANT_ITERATION_BOUND):
        program, root = generate_program(seed)
        findings = [
            f
            for f in oracle.check_program(program, root, seed)
            if f.kind in ("gamma", "no_shape")
        ]
        if findings:
            return  # caught within the bound
    pytest.fail(
        f"unsound split mutant survived {MUTANT_ITERATION_BOUND} "
        f"fuzzing iterations -- the oracle is vacuous"
    )


def _broken_widen(self, value1, value2):
    """Mutant: 'widen' by meet -- not an upper bound of join."""
    return self.meet(value1, value2)


def test_mutant_broken_widen_caught_by_lattice_oracle(monkeypatch):
    monkeypatch.setattr(MultisetDomain, "widen", _broken_widen)
    oracle = Oracle(AM_ONLY)
    for seed in range(MUTANT_ITERATION_BOUND):
        program, root = generate_program(seed)
        findings = [
            f
            for f in oracle.check_program(program, root, seed)
            if f.kind == "lattice"
        ]
        if findings:
            assert any(
                "widen" in f.message for f in findings
            ), [f.describe() for f in findings]
            return
    pytest.fail(
        f"broken-widen mutant survived {MUTANT_ITERATION_BOUND} "
        f"fuzzing iterations -- the lattice oracle is vacuous"
    )
