"""Tests for the inter-procedural engine: summaries, recursion, local heaps."""

import pytest

from repro import Analyzer
from repro.core.localheap import CutpointError
from repro.datawords import terms as T
from repro.datawords.patterns import pattern_set
from repro.numeric.linexpr import Constraint, LinExpr
from repro.shape.graph import NULL


def v(name):
    return LinExpr.var(name)


def analyze(source, proc, domain="au", **kw):
    return Analyzer.from_source(source).analyze(proc, domain=domain, **kw)


class TestBasicCalls:
    def test_call_composes_summary(self):
        res = analyze(
            """
            proc seven(x: list) returns (r: list) {
              r = x;
              if (x != NULL) { x->data = 7; }
            }
            proc main(x: list) returns (r: list) {
              r = seven(x);
            }
            """,
            "main",
        )
        heaps = [h for h in res.exit_heaps() if h.graph.word_nodes()]
        assert heaps
        for h in heaps:
            node = h.graph.node_of("r")
            assert h.value.E.entails(Constraint.eq(v(T.hd(node)), 7))

    def test_call_with_data_args_and_results(self):
        res = analyze(
            """
            proc addc(a: int) returns (b: int) { b = a + 5; }
            proc main(n: int) returns (m: int) { m = addc(n); m = m + 1; }
            """,
            "main",
        )
        (entry, summary), = res.summaries
        (heap,) = list(summary)
        assert heap.value.E.entails(
            Constraint.eq(v("m"), v(T.entry_copy("n")) + 6)
        )

    def test_two_sequential_calls_reuse_summary(self):
        res = analyze(
            """
            proc bump(x: list) returns (r: list) {
              r = x;
              if (x != NULL) { x->data = 1; }
            }
            proc main(x: list, y: list) returns (r: list, s: list) {
              r = bump(x);
              s = bump(y);
            }
            """,
            "main",
        )
        # bump analyzed once per entry shape, not once per call site
        bump_records = [
            key for key in res.engine.records if key[0] == "bump"
        ]
        assert len(bump_records) <= 2

    def test_tuple_returns(self):
        res = analyze(
            """
            proc pair(x: list) returns (a: list, b: list) {
              a = x; b = NULL;
            }
            proc main(x: list) returns (r: list, s: list) {
              (r, s) = pair(x);
            }
            """,
            "main",
        )
        heaps = [h for h in res.exit_heaps() if h.graph.word_nodes()]
        assert heaps
        for h in heaps:
            assert h.graph.node_of("s") == NULL
            assert h.graph.node_of("r") != NULL


class TestRecursion:
    SUM_SRC = """
        proc sumlen(x: list) returns (n: int) {
          local t: list;
          local m: int;
          if (x == NULL) { n = 0; }
          else {
            t = x->next;
            m = sumlen(t);
            n = m + 1;
          }
        }
    """

    def test_recursive_length(self):
        res = analyze(self.SUM_SRC, "sumlen")
        nonnull = [
            h
            for h in res.exit_heaps()
            if h.graph.labels.get(T.entry_copy("x")) not in (None, NULL)
        ]
        assert nonnull
        for h in nonnull:
            node = h.graph.node_of(T.entry_copy("x"))
            assert h.value.E.entails(
                Constraint.eq(v("n"), v(T.length(node)))
            )

    def test_recursive_all_set(self):
        res = analyze(
            """
            proc setall(x: list, w: int) returns (r: list) {
              local t, m: list;
              if (x == NULL) { r = NULL; }
              else {
                x->data = w;
                t = x->next;
                m = setall(t, w);
                x->next = NULL;
                x->next = m;
                r = x;
              }
            }
            """,
            "setall",
        )
        nonnull = [h for h in res.exit_heaps() if h.graph.labels.get("r") not in (None, NULL)]
        assert nonnull
        for h in nonnull:
            node = h.graph.node_of("r")
            assert h.value.E.entails(Constraint.eq(v(T.hd(node)), v("w")))


class TestCutpoints:
    def test_cutpoint_detected(self):
        # mid labels a *non-entry* node of the local heap passed to id():
        # a genuine cutpoint, rejected regardless of what the callee does.
        source = """
            proc id(x: list) returns (r: list) {
              r = x;
            }
            proc main(x: list) returns (r: list) {
              local mid: list;
              r = NULL;
              if (x != NULL) {
                mid = x->next;
                if (mid != NULL) {
                  r = id(x);
                }
              }
            }
        """
        with pytest.raises(CutpointError):
            analyze(source, "main")

    def test_entry_reference_fine_even_if_callee_assigns_formal(self):
        # The caller's x->next points at the entry node of the local heap
        # and the callee assigns its formal.  normalize_program renames the
        # assigned formal to a local (x$in), so the formal keeps naming the
        # entry cell and the external edge re-attaches soundly -- this used
        # to be rejected as a cutpoint.
        res = analyze(
            """
            proc touch(x: list) returns (r: list) {
              r = x;
              x = x->next;
            }
            proc main(x: list) returns (r: list) {
              local mid: list;
              r = NULL;
              if (x != NULL) {
                mid = x->next;
                if (mid != NULL) {
                  r = touch(mid);
                }
              }
            }
            """,
            "main",
        )
        heaps = [h for h in res.exit_heaps() if h.graph.word_nodes()]
        assert heaps

    def test_entry_alias_allowed_when_callee_keeps_formal(self):
        # x and the caller's q alias the same entry node; 'keep' never
        # reassigns its formal, so the reference re-attaches.
        res = analyze(
            """
            proc keep(x: list) returns (r: list) {
              r = x;
              if (x != NULL) { x->data = 3; }
            }
            proc main(x: list) returns (r: list, q: list) {
              q = x;
              r = keep(x);
            }
            """,
            "main",
        )
        heaps = [h for h in res.exit_heaps() if h.graph.word_nodes()]
        assert heaps
        for h in heaps:
            assert h.graph.node_of("q") == h.graph.node_of("r")


class TestEntryShapes:
    def test_null_and_nonnull_entries(self):
        res = analyze(
            "proc id(x: list) returns (r: list) { r = x; }", "id"
        )
        entry_graphs = {entry.graph.key() for entry, _ in res.summaries}
        assert len(entry_graphs) == 2  # x NULL / x a list

    def test_two_pointer_inputs_give_four_shapes(self):
        res = analyze(
            "proc pick(x: list, y: list) returns (r: list) { r = x; }",
            "pick",
        )
        assert len(res.summaries) == 4

    def test_snapshot_equalities_at_entry(self):
        res = analyze(
            "proc id(x: list) returns (r: list) { r = x; }", "id"
        )
        nonnull = [h for h in res.exit_heaps() if h.graph.word_nodes()]
        for h in nonnull:
            r_node = h.graph.node_of("r")
            snap = h.graph.node_of(T.entry_copy("x"))
            assert h.value.E.entails(
                Constraint.eq(v(T.length(r_node)), v(T.length(snap)))
            )
            assert h.value.E.entails(
                Constraint.eq(v(T.hd(r_node)), v(T.hd(snap)))
            )
