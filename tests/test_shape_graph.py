"""Unit and property tests for heap backbone graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shape.graph import NULL, HeapGraph, ShapeError


def chain(labels_at):
    """Build x -> n0 -> n1 -> ... -> null with labels {var: index}."""
    n = max(labels_at.values()) + 1
    nodes = [f"c{i}" for i in range(n)]
    succ = {nodes[i]: nodes[i + 1] for i in range(n - 1)}
    succ[nodes[-1]] = NULL
    labels = {var: nodes[i] for var, i in labels_at.items()}
    return HeapGraph(nodes, succ, labels)


class TestBasics:
    def test_empty(self):
        g = HeapGraph.empty(["x", "y"])
        assert g.node_of("x") == NULL
        assert not g.word_nodes()

    def test_null_cannot_have_successor(self):
        with pytest.raises(ShapeError):
            HeapGraph(["a"], {NULL: "a"}, {})

    def test_dangling_edge_rejected(self):
        with pytest.raises(ShapeError):
            HeapGraph(["a"], {"a": "zz"}, {})

    def test_label_on_missing_node(self):
        with pytest.raises(ShapeError):
            HeapGraph([], {}, {"x": "zz"})

    def test_preds_and_vars(self):
        g = chain({"x": 0, "y": 1})
        assert g.preds(g.node_of("y")) == [g.node_of("x")]
        assert g.vars_of(g.node_of("x")) == ["x"]

    def test_crucial_by_label(self):
        g = chain({"x": 0, "y": 1})
        assert g.is_crucial(g.node_of("x"))
        assert g.is_crucial(g.node_of("y"))

    def test_simple_interior(self):
        g = chain({"x": 0, "y": 2})
        simple = g.simple_nodes()
        assert simple == ["c1"]

    def test_crucial_by_sharing(self):
        g = HeapGraph(
            ["a", "b", "m"],
            {"a": "m", "b": "m", "m": NULL},
            {"x": "a", "y": "b"},
        )
        assert g.is_crucial("m")

    def test_reachability(self):
        g = chain({"x": 0, "y": 2})
        reach = g.reachable_from_vars(["y"]) - {NULL}
        assert reach == {"c2"}
        assert g.reachable_from_vars(["x"]) - {NULL} == {"c0", "c1", "c2"}

    def test_garbage(self):
        g = HeapGraph(["a", "b"], {"a": NULL, "b": NULL}, {"x": "a"})
        assert g.garbage() == {"b"}


class TestMutation:
    def test_with_label(self):
        g = chain({"x": 0}).with_label("y", "c0")
        assert g.node_of("y") == "c0"

    def test_without_nodes_refuses_labeled(self):
        g = chain({"x": 0})
        with pytest.raises(ShapeError):
            g.without_nodes(["c0"])

    def test_without_nodes(self):
        g = HeapGraph(["a", "b"], {"a": NULL, "b": NULL}, {"x": "a"})
        g2 = g.without_nodes(["b"])
        assert "b" not in g2.nodes

    def test_rename(self):
        g = chain({"x": 0}).rename_nodes({"c0": "z9"})
        assert g.node_of("x") == "z9"

    def test_fresh_name_avoids_taken(self):
        g = chain({"x": 0})
        name = g.fresh_node_name(taken=["n0"])
        assert name not in g.nodes and name != "n0"


class TestCanonical:
    def test_isomorphic_chains(self):
        g1 = chain({"x": 0, "y": 1})
        g2 = HeapGraph(
            ["p", "q"], {"p": "q", "q": NULL}, {"x": "p", "y": "q"}
        )
        assert g1.isomorphic(g2)
        assert g1.key() == g2.key()

    def test_label_placement_distinguishes(self):
        g1 = chain({"x": 0, "y": 1})
        g2 = chain({"x": 0, "y": 0})
        assert not g1.isomorphic(g2)

    def test_shared_tail_canonical(self):
        g1 = HeapGraph(
            ["a", "b", "m"],
            {"a": "m", "b": "m", "m": NULL},
            {"x": "a", "y": "b"},
        )
        g2 = HeapGraph(
            ["u", "v", "w"],
            {"u": "w", "v": "w", "w": NULL},
            {"x": "u", "y": "v"},
        )
        assert g1.isomorphic(g2)

    def test_canonical_renaming_is_bijective(self):
        g = chain({"x": 0, "y": 2})
        renaming = g.canonical_renaming()
        assert len(set(renaming.values())) == len(renaming)
        assert set(renaming) == set(g.nodes) - {NULL}


@st.composite
def graph_st(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    nodes = [f"g{i}" for i in range(n)]
    succ = {}
    for i, node in enumerate(nodes):
        target = draw(
            st.sampled_from(nodes[i + 1 :] + [NULL]) if i + 1 < n else st.just(NULL)
        )
        succ[node] = target
    labels = {}
    for v in ["x", "y"]:
        labels[v] = draw(st.sampled_from(nodes + [NULL])) if nodes else NULL
    g = HeapGraph(nodes, succ, labels)
    return g.without_nodes(g.garbage())


@settings(max_examples=60, deadline=None)
@given(graph_st())
def test_property_canonical_idempotent(g):
    c1, _ = g.canonical()
    c2, _ = c1.canonical()
    assert c1 == c2


@settings(max_examples=60, deadline=None)
@given(graph_st())
def test_property_canonical_preserves_key(g):
    c, _ = g.canonical()
    assert c.key() == g.key()
    assert g.isomorphic(c)
