"""Executable checks of the paper's worked examples (Figures 4-6, §5).

These are not data plots; each figure illustrates a mechanism the tests
below exercise end to end:

- Fig. 4: the relation at quicksort's first recursive call -- the split
  facts (everything in `left` <= pivot < everything in `right`, lengths
  add up, multisets partition);
- Fig. 5: what is lost *without* strengthening (the paper's motivating
  imprecision);
- Fig. 6: the infer_M computation recovering it.
"""

from fractions import Fraction

import pytest

from repro import Analyzer
from repro.core.combine import sigma_m_strengthen
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.lang.benchlib import benchmark_program
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron
from repro.shape.graph import NULL

AM = MultisetDomain()


def v(name):
    return LinExpr.var(name)


@pytest.fixture(scope="module")
def analyzer():
    return Analyzer(benchmark_program())


class TestFigure4:
    """The abstraction of quicksort's state at the recursive calls comes
    from qsplit's summary: Figure 4(c)'s formulas."""

    @pytest.fixture(scope="class")
    def qsplit_am(self, analyzer):
        return analyzer.analyze("qsplit", domain="am")

    def test_multiset_partition(self, qsplit_am, analyzer):
        # ms(x0) = ms(l) ⊎ ms(u)  (Figure 4(c)'s multiset formula).
        seen = False
        for entry, summary in qsplit_am.summaries:
            for heap in summary:
                n_in = heap.graph.labels.get(T.entry_copy("x"), NULL)
                n_l = heap.graph.labels.get("l", NULL)
                n_u = heap.graph.labels.get("u", NULL)
                if NULL in (n_in, n_l, n_u):
                    continue
                seen = True
                row = {
                    T.mhd(n_in): Fraction(1),
                    T.mtl(n_in): Fraction(1),
                    T.mhd(n_l): Fraction(-1),
                    T.mtl(n_l): Fraction(-1),
                    T.mhd(n_u): Fraction(-1),
                    T.mtl(n_u): Fraction(-1),
                }
                assert AM.entails_row(heap.value, row)
        assert seen

    def test_input_preserved(self, qsplit_am, analyzer):
        # eqm(x, x0): qsplit does not modify its input.
        for entry, summary in qsplit_am.summaries:
            for heap in summary:
                n_now = heap.graph.labels.get("x", NULL)
                n_in = heap.graph.labels.get(T.entry_copy("x"), NULL)
                if NULL in (n_now, n_in):
                    continue
                assert AM.entails_row(
                    heap.value,
                    {T.mhd(n_now): Fraction(1), T.mhd(n_in): Fraction(-1)},
                )


class TestFigures5and6:
    """The §5 imprecision and its strengthen_M repair."""

    def setting(self):
        domain = UniversalDomain(pattern_set("P=", "P1"))
        all_l = GuardInstance("ALL1", ("nl",))
        context = UniversalValue(
            Polyhedron.of(
                Constraint.le(v(T.hd("nl")), v(T.hd("np"))),
                Constraint.eq(v(T.length("np")), 1),
            ),
            {
                all_l: Polyhedron.of(
                    Constraint.le(v(T.elem("nl", "y1")), v(T.hd("np")))
                )
            },
        )
        summary_ms = MultisetValue(
            [
                {
                    T.mhd("nl'"): Fraction(1),
                    T.mtl("nl'"): Fraction(1),
                    T.mhd("nl"): Fraction(-1),
                    T.mtl("nl"): Fraction(-1),
                }
            ]
        )
        return domain, context, summary_ms

    def test_figure5_loss_without_strengthen(self):
        domain, context, _ = self.setting()
        after = domain.project_words(context, ["nl"])
        # everything about nl' is unknown: the pivot bound is gone
        assert not after.E.entails(
            Constraint.le(v(T.hd("nl'")), v(T.hd("np")))
        )

    def test_figure6_infer_m_recovers(self):
        domain, context, summary_ms = self.setting()
        strengthened = sigma_m_strengthen(domain, context, summary_ms)
        after = domain.project_words(strengthened, ["nl"])
        assert after.E.entails(
            Constraint.le(v(T.hd("nl'")), v(T.hd("np")))
        )
        gi = GuardInstance("ALL1", ("nl'",))
        ctx = after.E.meet(gi.guard_poly()).meet(
            after.clauses.get(gi, Polyhedron.top())
        )
        assert ctx.is_bottom() or ctx.entails(
            Constraint.le(v(T.elem("nl'", "y1")), v(T.hd("np")))
        )


class TestQuicksortAMSummary:
    """The running example's final summary: ms(a0) = ms(res)."""

    def test_preservation(self, analyzer):
        result = analyzer.analyze("quicksort", domain="am")
        seen = False
        for entry, summary in result.summaries:
            for heap in summary:
                n_in = heap.graph.labels.get(T.entry_copy("a"), NULL)
                n_out = heap.graph.labels.get("res", NULL)
                if NULL in (n_in, n_out):
                    continue
                seen = True
                row = {
                    T.mhd(n_in): Fraction(1),
                    T.mtl(n_in): Fraction(1),
                    T.mhd(n_out): Fraction(-1),
                    T.mtl(n_out): Fraction(-1),
                }
                assert AM.entails_row(heap.value, row)
        assert seen
