"""Differential soundness: abstract summaries must hold on concrete runs.

For each benchmark procedure we synthesize summaries in both domains, then
execute the procedure concretely on randomized inputs and check that every
summary heap whose backbone matches the observed input/output shape is
*satisfied* by the observed words -- the fundamental soundness contract of
the analysis (DESIGN.md §6).
"""

import random

import pytest

from repro import Analyzer
from repro.concrete.heap import from_cells, to_cells
from repro.concrete.interp import Interpreter
from repro.datawords import terms as T
from repro.lang.benchlib import benchmark_program
from repro.lang.cfg import build_icfg
from repro.shape.graph import NULL


@pytest.fixture(scope="module")
def analyzer():
    return Analyzer(benchmark_program())


@pytest.fixture(scope="module")
def interp():
    return Interpreter(build_icfg(benchmark_program()))


def random_inputs(rng, cfg):
    """Concrete argument list plus the value view (lists of ints)."""
    args = []
    views = []
    for p in cfg.inputs:
        if p.type == "int":
            v = rng.randint(-8, 8)
            args.append(v)
            views.append(v)
        else:
            values = [rng.randint(-9, 9) for _ in range(rng.randint(0, 5))]
            args.append(to_cells(values))
            views.append(values)
    return args, views


def matching_heaps(result, in_words, out_words, in_data, out_data):
    """Summary heaps whose backbone matches the concrete shapes.

    Returns (heap, words_env, data_env) tuples ready for satisfied_by.
    For multi-node backbones, the concrete word of a variable must be cut
    at the node boundaries; we only check single-node chains per variable
    (folded summaries satisfy this in practice) and skip others.
    """
    out = []
    for entry, summary in result.summaries:
        for heap in summary:
            graph = heap.graph
            words_env = {}
            data_env = {}
            ok = True
            # every labeled variable with a single-node chain binds its word
            for var, node in graph.labels.items():
                if var in in_words:
                    concrete = in_words[var]
                elif var in out_words:
                    concrete = out_words[var]
                else:
                    continue
                if node == NULL:
                    if concrete:  # shape mismatch: not this heap
                        ok = False
                        break
                    continue
                if not concrete:
                    ok = False
                    break
                chain = []
                cur = node
                while cur != NULL:
                    chain.append(cur)
                    cur = graph.succ.get(cur, NULL)
                if len(chain) == 1:
                    prior = words_env.get(node)
                    if prior is not None and prior != concrete:
                        ok = False
                        break
                    words_env[node] = concrete
                # multi-node chains: bind only when unambiguous (len >=
                # number of nodes); we bind nothing and rely on other heaps
            if not ok:
                continue
            data_env.update(in_data)
            data_env.update(out_data)
            out.append((heap, words_env, data_env))
    return out


PROCS = [
    "create", "addfst", "addlst", "delfst", "dellst", "init",
    "initSeq", "mapadd", "map2add", "copy", "max", "clone", "split",
    "delPred", "equal", "concat", "merge", "qsplit",
]


@pytest.mark.parametrize("proc", PROCS)
def test_am_summaries_hold_concretely(analyzer, interp, proc):
    result = analyzer.analyze(proc, domain="am")
    _differential(analyzer, interp, proc, result, seed=hash(proc) % 1000)


FAST_AU_PROCS = [
    "create",
    "addfst",
    "delfst",
    "init",
    "mapadd",
    # clone's AU analysis alone takes >1 min; slow lane only.
    pytest.param("clone", marks=pytest.mark.slow),
]


@pytest.mark.parametrize("proc", FAST_AU_PROCS)
def test_au_summaries_hold_concretely(analyzer, interp, proc):
    result = analyzer.analyze(proc, domain="au")
    _differential(analyzer, interp, proc, result, seed=hash(proc) % 1000)


def _differential(analyzer, interp, proc, result, seed, rounds=25):
    rng = random.Random(seed)
    cfg = analyzer.icfg.cfg(proc)
    checked = 0
    for _ in range(rounds):
        args, views = random_inputs(rng, cfg)
        if proc == "create":
            args = [max(0, a) for a in args]
            views = list(args)
        try:
            outputs = interp.run(proc, args)
        except Exception:
            continue
        in_words = {}
        in_data = {}
        for p, view in zip(cfg.inputs, views):
            if p.type == "list":
                in_words[T.entry_copy(p.name)] = view
                in_data.update({})
            else:
                in_data[p.name] = view
                in_data[T.entry_copy(p.name)] = view
        out_words = {}
        out_data = {}
        for p, value in zip(cfg.outputs, outputs):
            if p.type == "list":
                out_words[p.name] = from_cells(value)
            else:
                out_data[p.name] = value
        shape_matched = False
        for heap, words_env, data_env in matching_heaps(
            result, in_words, out_words, in_data, out_data
        ):
            shape_matched = True
            assert result.domain.satisfied_by(
                heap.value, words_env, data_env
            ), (
                f"{proc}: summary {heap.describe(result.domain)} violated "
                f"by inputs {views} -> outputs {out_words} {out_data}"
            )
            checked += 1
        assert shape_matched, f"{proc}: no summary shape matches {views}"
    assert checked > 0, f"{proc}: differential test never bound any words"
