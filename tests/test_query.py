"""Demand-driven query engine tests (strategies, cones, query surfaces).

Five layers:

- **cone units**: ``backward_cone`` on straight-line call chains, mutual
  recursion (an SCC is wholly inside each member's cone) and diamond
  shapes; unknown procedures raise;
- **strategy semantics**: ``DemandStrategy`` never tabulates outside its
  cone, reports cone accounting through ``AnalysisResult.stats``, and
  rejects being run on a different root;
- **the differential gate**: demand answers match the exhaustive
  checker's verdicts *and* site payloads bit-for-bit across the corpus
  (clean, buggy, dll, terminating) and the Table 1 benchmark roots —
  including degradation parity on cutpoint programs;
- **cache regressions**: ``check_safety`` / ``check_termination`` keep
  the run-level summary cache hot (the old ``use_cache=False`` escape
  hatch produced zero hits forever), and ``point_states`` restores
  per-point state tables from warm payloads and upgrades stale ones;
- **surfaces**: ``repro-lint --query`` exit codes and output, the
  daemon's ``check`` verb with a ``query`` field (warm answers from the
  cone-keyed cache, invalidation on body edits, validation errors).
"""

import json
from pathlib import Path

import pytest

from repro.checker.findings import SAFETY_RULE_IDS, UNKNOWN
from repro.checker.safety import (
    Query,
    SafetyOptions,
    answer_query,
    check_safety,
)
from repro.checker.__main__ import main as lint_main
from repro.core.api import Analyzer
from repro.core.strategy import (
    DemandStrategy,
    ExhaustiveStrategy,
    backward_cone,
)
from repro.engine import EngineOptions
from repro.lang.benchlib import TABLE1, benchmark_program

CORPUS = Path(__file__).parent / "corpus"
CORPUS_DIRS = ("clean", "buggy", "dll", "terminating")

CHAIN = """
proc leaf(x: list) returns (r: list) {
  r = x;
}
proc mid(x: list) returns (r: list) {
  r = leaf(x);
}
proc main(x: list) returns (r: list) {
  r = mid(x);
}
proc other(x: list) returns (r: list) {
  r = x;
}
"""

MUTUAL = """
proc even(x: list) returns (r: list) {
  r = x;
  if (x != NULL) {
    r = odd(x->next);
  }
}
proc odd(x: list) returns (r: list) {
  r = x;
  if (x != NULL) {
    r = even(x->next);
  }
}
proc driver(x: list) returns (r: list) {
  r = even(x);
}
"""

CUTPOINT = """
proc id(x: list) returns (r: list) {
  r = x;
}
proc main(x: list) returns (r: list) {
  local mid: list;
  r = NULL;
  if (x != NULL) {
    mid = x->next;
    if (mid != NULL) {
      r = id(x);
    }
  }
}
"""


def corpus_files():
    files = []
    for sub in CORPUS_DIRS:
        files.extend(sorted((CORPUS / sub).glob("*.lisl")))
    assert files
    return files


def site_payload(site):
    return (
        site.rule_id,
        site.proc,
        site.line,
        site.detail,
        site.verdict,
        site.message,
        json.dumps(site.witness, sort_keys=True),
    )


# -- backward cones -------------------------------------------------------------


class TestBackwardCone:
    def test_chain_and_unrelated_proc(self):
        icfg = Analyzer.from_source(CHAIN).icfg
        assert backward_cone(icfg, "main") == ("leaf", "main", "mid")
        assert backward_cone(icfg, "mid") == ("leaf", "mid")
        assert backward_cone(icfg, "leaf") == ("leaf",)
        assert backward_cone(icfg, "other") == ("other",)

    def test_mutual_recursion_scc_wholly_in_cone(self):
        icfg = Analyzer.from_source(MUTUAL).icfg
        # Either member of the SCC pulls in the other; neither pulls in
        # the caller (roots over-approximate all calling contexts).
        assert backward_cone(icfg, "even") == ("even", "odd")
        assert backward_cone(icfg, "odd") == ("even", "odd")
        assert backward_cone(icfg, "driver") == ("driver", "even", "odd")

    def test_unknown_proc_raises(self):
        icfg = Analyzer.from_source(CHAIN).icfg
        with pytest.raises(KeyError):
            backward_cone(icfg, "nope")


class TestDemandStrategy:
    def test_records_stay_inside_cone(self):
        analyzer = Analyzer.from_source(CHAIN)
        strategy = DemandStrategy("mid")
        result = analyzer.analyze("mid", domain="am", strategy=strategy)
        analyzed = {r.proc for r in result.engine.records.values()}
        assert analyzed == {"leaf", "mid"}
        assert result.stats["strategy"] == "demand"
        assert result.stats["cone_size"] == 2
        assert result.stats["proc_count"] == 4
        assert result.stats["cone"] == ["leaf", "mid"]

    def test_cone_strictly_smaller_than_program(self):
        analyzer = Analyzer.from_source(CHAIN)
        for proc in ("leaf", "mid", "other"):
            strategy = DemandStrategy(proc)
            analyzer.analyze(proc, domain="am", strategy=strategy)
            assert len(strategy.cone) < len(analyzer.icfg.cfgs)

    def test_wrong_root_rejected(self):
        analyzer = Analyzer.from_source(CHAIN)
        with pytest.raises(ValueError):
            analyzer.analyze("main", domain="am", strategy=DemandStrategy("mid"))

    def test_exhaustive_stats_tagged(self):
        analyzer = Analyzer.from_source(CHAIN)
        result = analyzer.analyze(
            "main", domain="am", strategy=ExhaustiveStrategy()
        )
        assert result.stats["strategy"] == "exhaustive"


# -- the differential gate ------------------------------------------------------


def assert_demand_matches_exhaustive(source: str, procs=None):
    """Every (proc, line, rule) coordinate of the exhaustive sweep gets
    the identical verdict, sites and degradation status on demand."""
    exhaustive = Analyzer.from_source(source)
    report = check_safety(
        exhaustive, SafetyOptions(procs=list(procs) if procs else None)
    )
    demand = Analyzer.from_source(source)  # independent caches
    coords = sorted(
        {(s.proc, s.line, s.rule_id) for s in report.sites},
        key=lambda c: (c[0], c[1] or 0, c[2]),
    )
    assert coords, "exhaustive sweep produced no obligations to compare"
    n_smaller = 0
    for proc, line, rule in coords:
        query = Query(proc=proc, line=line, rule=rule)
        answer = answer_query(demand, query)
        expected = [
            s
            for s in report.sites
            if s.proc == proc and s.line == line and s.rule_id == rule
        ]
        assert answer.verdict == report._aggregate(
            [s.verdict for s in expected]
        ), f"verdict mismatch at {proc}:{line}:{rule}"
        assert sorted(site_payload(s) for s in answer.sites) == sorted(
            site_payload(s) for s in expected
        ), f"site payload mismatch at {proc}:{line}:{rule}"
        status = report.proc_status.get(proc, "ok")
        assert (answer.proc_status == "ok") == (status == "ok")
        assert set(answer.cone).issubset(set(demand.icfg.cfgs))
        if answer.cone_size < answer.proc_count:
            n_smaller += 1
    return len(coords), n_smaller


class TestDifferentialGate:
    @pytest.mark.parametrize(
        "path", corpus_files(), ids=lambda p: f"{p.parent.name}/{p.stem}"
    )
    def test_corpus_demand_equals_exhaustive(self, path):
        assert_demand_matches_exhaustive(path.read_text())

    def test_table1_roots_demand_equals_exhaustive(self):
        program = benchmark_program()
        exhaustive = Analyzer(program)
        roots = [e.name for e in TABLE1]
        report = check_safety(exhaustive, SafetyOptions(procs=roots))
        demand = Analyzer(program)
        n_smaller = 0
        for root in roots:
            answer = answer_query(demand, Query(proc=root))
            expected = [s for s in report.sites if s.proc == root]
            assert answer.verdict == report._aggregate(
                [s.verdict for s in expected]
            ), f"verdict mismatch at Table 1 root {root}"
            assert sorted(site_payload(s) for s in answer.sites) == sorted(
                site_payload(s) for s in expected
            ), f"site payload mismatch at Table 1 root {root}"
            if answer.cone_size < answer.proc_count:
                n_smaller += 1
        # The headline demand win: cones are strictly smaller than the
        # whole program on >= 80% of queries (ISSUE acceptance floor).
        assert n_smaller / len(roots) >= 0.8

    def test_cutpoint_degradation_parity(self):
        exhaustive = Analyzer.from_source(CUTPOINT)
        report = check_safety(exhaustive, SafetyOptions(procs=["main"]))
        assert report.proc_status["main"].startswith("cutpoint:")
        demand = Analyzer.from_source(CUTPOINT)
        answer = answer_query(demand, Query(proc="main"))
        assert answer.proc_status.startswith("cutpoint:")
        assert answer.verdict == UNKNOWN
        assert sorted(site_payload(s) for s in answer.sites) == sorted(
            site_payload(s) for s in report.sites if s.proc == "main"
        )
        # Degradation surfaces as a checker.incomplete finding, like the
        # exhaustive report's.
        assert any(
            f.rule_id == "checker.incomplete" for f in answer.findings()
        )

    def test_query_validation(self):
        analyzer = Analyzer.from_source(CHAIN)
        with pytest.raises(ValueError):
            answer_query(analyzer, Query(proc="nope"))
        with pytest.raises(ValueError):
            Query.parse("main")
        with pytest.raises(ValueError):
            Query.parse("main:notaline")
        with pytest.raises(ValueError):
            Query.parse("main:3:not.a.rule")
        q = Query.parse("main:0")
        assert q.line is None and q.rule is None
        q = Query.parse("main:7:safety.leak")
        assert (q.proc, q.line, q.rule) == ("main", 7, "safety.leak")


# -- cache regressions (the use_cache=False fix) --------------------------------


class TestSummaryCacheStaysHot:
    def test_check_safety_hits_cache_on_second_sweep(self):
        analyzer = Analyzer.from_source(CHAIN)
        cold = check_safety(analyzer)
        assert analyzer.cache.hits == 0
        warm = check_safety(analyzer)
        assert analyzer.cache.hits > 0, (
            "Tier-B safety must keep the summary cache hot "
            "(the use_cache=False workaround is gone)"
        )
        assert [site_payload(s) for s in warm.sites] == [
            site_payload(s) for s in cold.sites
        ]

    def test_check_termination_hits_cache_on_second_sweep(self):
        from repro.termination.driver import (
            TerminationOptions,
            check_termination,
        )

        source = """
        proc walk(x: list) returns (r: list) {
          r = x;
          while (r != NULL) {
            r = r->next;
          }
        }
        """
        analyzer = Analyzer.from_source(source)
        cold = check_termination(analyzer, TerminationOptions())
        warm = check_termination(analyzer, TerminationOptions())
        assert analyzer.cache.hits > 0
        assert [
            (s.kind, s.proc, s.line, s.verdict) for s in warm.sites
        ] == [(s.kind, s.proc, s.line, s.verdict) for s in cold.sites]

    def test_point_states_restored_from_warm_payload(self):
        from repro.engine.canon import heapset_hash

        analyzer = Analyzer.from_source(CHAIN)
        opts = EngineOptions(point_states=True)
        cold = analyzer.analyze("main", domain="am", engine_opts=opts)
        assert not cold.engine.from_cache
        cold_states = {
            (r.proc, i): heapset_hash(state, cold.domain)
            for r in cold.engine.records.values()
            for i, state in sorted(r.states.items())
        }
        warm = analyzer.analyze(
            "main", domain="am", engine_opts=EngineOptions(point_states=True)
        )
        assert warm.engine.from_cache
        warm_states = {
            (r.proc, i): heapset_hash(state, warm.domain)
            for r in warm.engine.records.values()
            for i, state in sorted(r.states.items())
        }
        assert warm_states == cold_states and cold_states

    def test_stale_payload_upgraded_when_states_wanted(self):
        analyzer = Analyzer.from_source(CHAIN)
        analyzer.analyze("main", domain="am")  # legacy payload, no states
        result = analyzer.analyze(
            "main", domain="am", engine_opts=EngineOptions(point_states=True)
        )
        assert not result.engine.from_cache  # recomputed, not restored
        assert result.engine.telemetry.counters.get("cache.state_upgrades")
        assert all(r.states for r in result.engine.records.values())

    def test_recorder_hook_streams_records(self):
        seen = []
        analyzer = Analyzer.from_source(CHAIN)
        analyzer.analyze(
            "main",
            domain="am",
            engine_opts=EngineOptions(point_states=seen.append),
        )
        assert {r.proc for r in seen} == {"leaf", "mid", "main"}
        assert all(r.states for r in seen)


# -- the CLI surface ------------------------------------------------------------


class TestLintQueryCLI:
    def test_unsafe_query_exits_one(self, capsys):
        path = str(CORPUS / "buggy" / "null_deref_guaranteed.lisl")
        assert lint_main([path, "--query", "main:10"]) == 1
        out = capsys.readouterr().out
        assert "unsafe" in out and "cone 1/1" in out

    def test_safe_query_exits_zero(self, capsys):
        path = str(CORPUS / "buggy" / "null_deref_guaranteed.lisl")
        assert lint_main([path, "--query", "main:0:safety.leak"]) == 0
        out = capsys.readouterr().out
        assert "safe" in out

    def test_fail_on_none_masks_exit(self):
        path = str(CORPUS / "buggy" / "null_deref_guaranteed.lisl")
        assert lint_main([path, "--query", "main:10", "--fail-on", "none"]) == 0

    def test_json_answer(self, capsys):
        path = str(CORPUS / "buggy" / "null_deref_guaranteed.lisl")
        assert lint_main([path, "--query", "main:10", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "unsafe"
        assert payload["cone"] == ["main"]
        assert payload["query"] == {
            "proc": "main", "line": 10, "rule": None,
        }

    def test_usage_errors_exit_two(self, tmp_path):
        path = str(CORPUS / "buggy" / "null_deref_guaranteed.lisl")
        assert lint_main([path, "--query", "nosuch:1"]) == 2
        assert lint_main([path, "--query", "main"]) == 2
        assert lint_main([path, "--query", "main:1:bogus.rule"]) == 2
        other = tmp_path / "other.lisl"
        other.write_text("proc f(x: list) returns (r: list) { r = x; }")
        assert (
            lint_main([path, str(other), "--query", "main:10"]) == 2
        ), "--query must take exactly one file"


# -- the service surface --------------------------------------------------------


class TestServiceQueries:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.service.server import AnalysisServer, ServerConfig

        srv = AnalysisServer(
            ServerConfig(port=0, jobs=0, store_dir=str(tmp_path / "store"))
        )
        srv.start()
        yield srv
        if not srv.stopped.is_set():
            srv.stop()

    def _client(self, srv):
        from repro.service.client import ServiceClient

        _, (host, port) = srv.address
        return ServiceClient.connect_tcp(host, port)

    def test_cold_warm_and_invalidation(self, server):
        source = (CORPUS / "buggy" / "null_deref_guaranteed.lisl").read_text()
        with self._client(server) as client:
            cold = client.check(source, query="main:10")
            assert cold["ok"] and cold["result"]["mode"] == "cold"
            answer = cold["result"]["query"]
            assert answer["verdict"] == "unsafe"
            assert answer["cone"] == ["main"]

            warm = client.check(source, query="main:10")
            assert warm["result"]["mode"] == "warm"
            assert warm["result"]["query"] == answer

            # An edit that shifts source lines moves the Tier-B key
            # (the cone key folds in the line signature): cold again.
            again = client.check("\n" + source, query="main:11")
            assert again["result"]["mode"] == "cold"

    def test_object_query_and_rule_filter(self, server):
        source = (CORPUS / "buggy" / "null_deref_guaranteed.lisl").read_text()
        with self._client(server) as client:
            resp = client.check(
                source, query={"proc": "main", "rule": "safety.leak"}
            )
            answer = resp["result"]["query"]
            assert answer["verdict"] == "safe"
            assert {
                f["ruleId"] for f in answer["findings"]
            } == {"safety.leak"}

    def test_validation_errors(self, server):
        source = (CORPUS / "buggy" / "null_deref_guaranteed.lisl").read_text()
        with self._client(server) as client:
            bad = client.request("check", source=source, query="nosuch:1")
            assert not bad["ok"] and bad["error"]["kind"] == "bad_request"
            bad = client.request("check", source=source, query=42)
            assert not bad["ok"] and bad["error"]["kind"] == "bad_request"
            bad = client.request(
                "check", source=source, query={"proc": ""}
            )
            assert not bad["ok"] and bad["error"]["kind"] == "bad_request"

    def test_query_metrics_exposed(self, server):
        source = (CORPUS / "buggy" / "null_deref_guaranteed.lisl").read_text()
        with self._client(server) as client:
            client.check(source, query="main:10")
            client.check(source, query="main:10")
            text = client.metrics()
        assert 'repro_query_total{mode="cold"} 1' in text
        assert 'repro_query_total{mode="warm"} 1' in text
        assert "repro_query_latency_ms_count 2" in text

    def test_gateway_query_per_tenant_cache(self, tmp_path):
        from repro.gateway.server import GatewayConfig, GatewayThread
        from repro.service.client import ServiceClient

        source = (CORPUS / "buggy" / "null_deref_guaranteed.lisl").read_text()
        gw = GatewayThread(
            GatewayConfig(
                jobs=0, workers=1, store_dir=str(tmp_path / "store")
            )
        ).start()
        try:
            _, (host, port) = gw.address
            with ServiceClient.connect_tcp(host, port) as client:
                a = client.check(source, query="main:10", tenant="alpha")
                assert a["result"]["mode"] == "cold"
                assert a["result"]["tenant"] == "alpha"
                b = client.check(source, query="main:10", tenant="alpha")
                assert b["result"]["mode"] == "warm"
                # Another tenant's cache is separate by construction.
                c = client.check(source, query="main:10", tenant="beta")
                assert c["result"]["mode"] == "cold"
                assert (
                    c["result"]["query"]["verdict"]
                    == a["result"]["query"]["verdict"]
                )
        finally:
            gw.stop()
