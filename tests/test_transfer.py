"""Unit tests for the statement transformers (post#, paper §4)."""

import pytest

from repro.core.transfer import Transfer, data_expr_to_linexpr
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain
from repro.datawords.patterns import pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.lang import ast as A
from repro.lang.cfg import (
    OpAssignData,
    OpAssignPtr,
    OpAssumeData,
    OpAssumePtr,
    OpStoreData,
    OpStoreNext,
)
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL, HeapGraph


def v(name):
    return LinExpr.var(name)


@pytest.fixture
def au():
    return UniversalDomain(pattern_set("P=", "P1"))


def one_node_heap(domain, var="x", length=None):
    g = HeapGraph(["a"], {"a": NULL}, {var: "a", "p": "a"})
    E = Polyhedron.top()
    if length is not None:
        E = Polyhedron.of(Constraint.eq(v(T.length("a")), length))
    return AbstractHeap(g, UniversalValue(E))


class TestAssignPtr:
    def test_assign_null(self, au):
        heap = one_node_heap(au)
        tr = Transfer(au)
        (out,) = tr.post(OpAssignPtr("p", "null"), heap)
        assert out.graph.node_of("p") == NULL
        assert out.graph.node_of("x") != NULL

    def test_assign_null_collects_garbage(self, au):
        g = HeapGraph(["a"], {"a": NULL}, {"x": "a"})
        heap = AbstractHeap(g, UniversalValue())
        tr = Transfer(au)
        (out,) = tr.post(OpAssignPtr("x", "null"), heap)
        assert not out.graph.word_nodes()

    def test_assign_var_aliases(self, au):
        heap = one_node_heap(au)
        tr = Transfer(au)
        g2 = heap.graph.with_label("q", NULL)
        (out,) = tr.post(OpAssignPtr("q", "var", "x"), AbstractHeap(g2, heap.value))
        assert out.graph.node_of("q") == out.graph.node_of("x")

    def test_new_cell(self, au):
        heap = AbstractHeap(HeapGraph.empty(["p"]), UniversalValue())
        tr = Transfer(au)
        (out,) = tr.post(OpAssignPtr("p", "new"), heap)
        node = out.graph.node_of("p")
        assert node != NULL
        assert out.value.E.entails(Constraint.eq(v(T.length(node)), 1))

    def test_next_of_null_is_dead(self, au):
        heap = AbstractHeap(HeapGraph.empty(["p", "q"]), UniversalValue())
        tr = Transfer(au)
        assert tr.post(OpAssignPtr("q", "next", "p"), heap) == []

    def test_next_materializes_both_cases(self, au):
        g = HeapGraph(["a"], {"a": NULL}, {"x": "a", "q": "a"})
        heap = AbstractHeap(g, UniversalValue())
        tr = Transfer(au)
        outs = tr.post(OpAssignPtr("q", "next", "x"), heap)
        shapes = {len(o.graph.word_nodes()) for o in outs}
        # len==1 case: q -> NULL (one node); len>1: x -> q chain (two nodes)
        assert shapes == {1, 2}

    def test_next_respects_known_length(self, au):
        heap = one_node_heap(au, length=1)
        tr = Transfer(au)
        g2 = heap.graph.with_label("q", NULL)
        outs = tr.post(OpAssignPtr("q", "next", "x"), AbstractHeap(g2, heap.value))
        assert len(outs) == 1
        assert outs[0].graph.node_of("q") == NULL

    def test_cursor_advance_folds(self, au):
        # x and c on the same node; c = c->next leaves x's node extended.
        g = HeapGraph(
            ["a", "b"], {"a": "b", "b": NULL}, {"x": "a", "c": "b"}
        )
        E = Polyhedron.of(
            Constraint.eq(v(T.length("a")), 1),
            Constraint.ge(v(T.length("b")), 2),
        )
        heap = AbstractHeap(g, UniversalValue(E))
        tr = Transfer(au)
        outs = tr.post(OpAssignPtr("c", "next", "c"), heap)
        two_node = [o for o in outs if len(o.graph.word_nodes()) == 2]
        assert two_node
        out = two_node[0]
        x_node = out.graph.node_of("x")
        assert out.value.E.entails(Constraint.eq(v(T.length(x_node)), 2))


class TestStoreOps:
    def test_store_data_updates_head(self, au):
        heap = one_node_heap(au)
        tr = Transfer(au)
        (out,) = tr.post(
            OpStoreData("p", A.IntLit(7)), heap
        )
        node = out.graph.node_of("p")
        assert out.value.E.entails(Constraint.eq(v(T.hd(node)), 7))

    def test_store_data_null_is_dead(self, au):
        heap = AbstractHeap(HeapGraph.empty(["p"]), UniversalValue())
        tr = Transfer(au)
        assert tr.post(OpStoreData("p", A.IntLit(7)), heap) == []

    def test_store_next_null_truncates(self, au):
        g = HeapGraph(["a", "b"], {"a": "b", "b": NULL}, {"p": "a"})
        E = Polyhedron.of(Constraint.eq(v(T.length("a")), 1))
        heap = AbstractHeap(g, UniversalValue(E))
        tr = Transfer(au)
        outs = tr.post(OpStoreNext("p", None), heap)
        assert outs
        for out in outs:
            node = out.graph.node_of("p")
            assert out.graph.succ.get(node) == NULL
            assert len(out.graph.word_nodes()) == 1  # b was collected

    def test_store_next_links(self, au):
        g = HeapGraph(["a", "b"], {"a": NULL, "b": NULL}, {"p": "a", "q": "b"})
        E = Polyhedron.of(Constraint.eq(v(T.length("a")), 1))
        heap = AbstractHeap(g, UniversalValue(E))
        tr = Transfer(au)
        outs = tr.post(OpStoreNext("p", "q"), heap)
        assert outs
        out = outs[0]
        p_node = out.graph.node_of("p")
        # after folding, q may have merged into p's word
        q_node = out.graph.node_of("q")
        assert out.graph.succ.get(p_node) in (q_node, NULL)

    def test_store_next_unfolds_long_word(self, au):
        # p's word longer than 1: the cell must be exposed first.
        g = HeapGraph(["a"], {"a": NULL}, {"p": "a"})
        E = Polyhedron.of(Constraint.eq(v(T.length("a")), 3))
        heap = AbstractHeap(g, UniversalValue(E))
        tr = Transfer(au)
        outs = tr.post(OpStoreNext("p", None), heap)
        assert outs
        for out in outs:
            node = out.graph.node_of("p")
            assert out.value.E.entails(Constraint.eq(v(T.length(node)), 1))


class TestAssumes:
    def test_ptr_eq_exact(self, au):
        g = HeapGraph(["a", "b"], {"a": NULL, "b": NULL}, {"x": "a", "y": "b"})
        heap = AbstractHeap(g, UniversalValue())
        tr = Transfer(au)
        assert tr.post(OpAssumePtr("x", "y", True), heap) == []
        assert tr.post(OpAssumePtr("x", "y", False), heap) == [heap]

    def test_ptr_null_test(self, au):
        heap = AbstractHeap(HeapGraph.empty(["x"]), UniversalValue())
        tr = Transfer(au)
        assert tr.post(OpAssumePtr("x", None, True), heap) == [heap]
        assert tr.post(OpAssumePtr("x", None, False), heap) == []

    def test_data_assume_filters(self, au):
        heap = one_node_heap(au)
        tr = Transfer(au)
        outs = tr.post(
            OpAssumeData("<", A.DataOf(A.Var("p")), A.IntLit(0)), heap
        )
        assert len(outs) == 1
        node = outs[0].graph.node_of("p")
        assert outs[0].value.E.entails(
            Constraint.le(v(T.hd(node)), -1)
        )

    def test_data_assume_contradiction(self, au):
        g = HeapGraph(["a"], {"a": NULL}, {"p": "a"})
        E = Polyhedron.of(Constraint.eq(v(T.hd("a")), 5))
        heap = AbstractHeap(g, UniversalValue(E))
        tr = Transfer(au)
        outs = tr.post(
            OpAssumeData("<", A.DataOf(A.Var("p")), A.IntLit(0)), heap
        )
        assert outs == []

    def test_assign_data_increment(self, au):
        heap = AbstractHeap(
            HeapGraph.empty(["p"]),
            UniversalValue(Polyhedron.of(Constraint.eq(v("i"), 3))),
        )
        tr = Transfer(au)
        (out,) = tr.post(OpAssignData("i", A.BinOp("+", A.Var("i"), A.IntLit(1))), heap)
        assert out.value.E.entails(Constraint.eq(v("i"), 4))


class TestDataExprTranslation:
    def test_data_of(self):
        g = HeapGraph(["a"], {"a": NULL}, {"p": "a"})
        expr = data_expr_to_linexpr(A.DataOf(A.Var("p")), g)
        assert expr == v(T.hd("a"))

    def test_affine(self):
        g = HeapGraph.empty([])
        ast = A.BinOp("-", A.BinOp("*", A.IntLit(2), A.Var("a")), A.IntLit(3))
        expr = data_expr_to_linexpr(ast, g)
        assert expr.coeff("a") == 2
        assert expr.const == -3

    def test_am_domain_transfers_run(self):
        am = MultisetDomain()
        g = HeapGraph(["a"], {"a": NULL}, {"p": "a", "x": "a"})
        heap = AbstractHeap(g, am.top())
        tr = Transfer(am)
        (out,) = tr.post(OpStoreData("p", A.Var("d")), heap)
        from fractions import Fraction

        node = out.graph.node_of("p")
        assert am.entails_row(
            out.value, {T.mhd(node): Fraction(1), "d": Fraction(-1)}
        )
