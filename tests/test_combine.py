"""Tests for domain combination (paper §5): σ_M, strengthen, convert."""

from fractions import Fraction

import pytest

from repro.core.combine import (
    convert_value,
    infer_via_traversal,
    sigma_m_from_universal,
    sigma_m_strengthen,
    strengthen,
)
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron

AM = MultisetDomain()


def v(name):
    return LinExpr.var(name)


def ms_eq(a, b):
    return {
        T.mhd(a): Fraction(1),
        T.mtl(a): Fraction(1),
        T.mhd(b): Fraction(-1),
        T.mtl(b): Fraction(-1),
    }


class TestSigmaM:
    def test_quicksort_scenario(self):
        """The paper's §5 motivating example: from ms(n) = ms(l) and
        'all elements of l are <= d', infer the same about n."""
        domain = UniversalDomain(pattern_set("P=", "P1"))
        all_l = GuardInstance("ALL1", ("l",))
        u = UniversalValue(
            Polyhedron.of(Constraint.le(v(T.hd("l")), v("d"))),
            {all_l: Polyhedron.of(Constraint.le(v(T.elem("l", "y1")), v("d")))},
        )
        m = MultisetValue([ms_eq("n", "l")])
        out = sigma_m_strengthen(domain, u, m)
        # hd(n) is a member of ms(l) = {hd(l)} ⊎ tl(l): both cases <= d.
        assert out.E.entails(Constraint.le(v(T.hd("n")), v("d")))
        # every tail element of n likewise.
        all_n = GuardInstance("ALL1", ("n",))
        assert all_n in out.clauses
        assert out.clauses[all_n].entails(
            Constraint.le(v(T.elem("n", "y1")), v("d"))
        )

    def test_union_decomposition(self):
        """ms(a) = ms(l) ⊎ ms(r), l-elements <= d, r-elements > d:
        members of a are only boundable by the join (no info)."""
        domain = UniversalDomain(pattern_set("P=", "P1"))
        u = UniversalValue(
            Polyhedron.of(
                Constraint.le(v(T.hd("l")), v("d")),
                Constraint.gt_int(v(T.hd("r")), v("d")),
                Constraint.ge(v(T.hd("l")), 0),
                Constraint.ge(v(T.hd("r")), 0),
            ),
            {},
        )
        row = {
            T.mhd("a"): Fraction(1),
            T.mtl("a"): Fraction(1),
            T.mhd("l"): Fraction(-1),
            T.mhd("r"): Fraction(-1),
        }
        m = MultisetValue([row])
        out = sigma_m_strengthen(domain, u, m)
        # hd(a) in {hd(l)} ⊎ {hd(r)}: both are >= 0.
        assert out.E.entails(Constraint.ge(v(T.hd("a")), 0))
        assert not out.E.entails(Constraint.le(v(T.hd("a")), v("d")))

    def test_sigma2_exports_head_equalities(self):
        domain = UniversalDomain(pattern_set("P="))
        u = UniversalValue(
            Polyhedron.of(
                Constraint.eq(v(T.hd("a")), v(T.hd("b")))
            )
        )
        out = sigma_m_from_universal(domain, u, AM.top())
        assert AM.entails_row(
            out, {T.mhd("a"): Fraction(1), T.mhd("b"): Fraction(-1)}
        )

    def test_no_memberships_no_change(self):
        domain = UniversalDomain(pattern_set("P=", "P1"))
        u = UniversalValue(Polyhedron.of(Constraint.ge(v(T.hd("x")), 0)))
        out = sigma_m_strengthen(domain, u, AM.top())
        assert domain.equivalent(u, out)

    def test_strengthen_wrapper_multiset(self):
        domain = UniversalDomain(pattern_set("P=", "P1"))
        all_l = GuardInstance("ALL1", ("l",))
        u = UniversalValue(
            Polyhedron.of(Constraint.le(v(T.hd("l")), v("d"))),
            {all_l: Polyhedron.of(Constraint.le(v(T.elem("l", "y1")), v("d")))},
        )
        m = MultisetValue([ms_eq("n", "l")])
        out = strengthen(domain, u, m, AM)
        assert out.E.entails(Constraint.le(v(T.hd("n")), v("d")))


class TestConvert:
    def test_sortedness_to_successor_patterns(self):
        """The paper's §5 convert example: from ORD2-sortedness derive the
        SUCC2 (y2 = y1 + 1) form."""
        src = UniversalDomain(pattern_set("P2"))
        dst = UniversalDomain(pattern_set("SUCC2"))
        ord2 = GuardInstance("ORD2", ("n",))
        value = UniversalValue(
            Polyhedron.top(),
            {
                ord2: Polyhedron.of(
                    Constraint.le(v(T.elem("n", "y1")), v(T.elem("n", "y2")))
                )
            },
        )
        out = convert_value(value, src, dst)
        succ = GuardInstance("SUCC2", ("n",))
        assert succ in out.clauses
        assert out.clauses[succ].entails(
            Constraint.le(v(T.elem("n", "y1")), v(T.elem("n", "y2")))
        )

    def test_convert_keeps_common_patterns(self):
        src = UniversalDomain(pattern_set("P=", "P1"))
        dst = UniversalDomain(pattern_set("P=", "P1", "P2"))
        all1 = GuardInstance("ALL1", ("n",))
        value = UniversalValue(
            Polyhedron.top(),
            {all1: Polyhedron.of(Constraint.ge(v(T.elem("n", "y1")), 5))},
        )
        out = convert_value(value, src, dst)
        assert all1 in out.clauses
        # ORD2 instance derivable from ALL1 (both positions >= 5).
        ord2 = GuardInstance("ORD2", ("n",))
        assert ord2 in out.clauses
        assert out.clauses[ord2].entails(
            Constraint.ge(v(T.elem("n", "y1")), 5)
        )

    def test_convert_from_all1_to_ord2_relation(self):
        """ALL1 alone cannot produce y1<=y2 => data order; the conversion
        must not invent unsound relations."""
        src = UniversalDomain(pattern_set("P1"))
        dst = UniversalDomain(pattern_set("P2"))
        all1 = GuardInstance("ALL1", ("n",))
        value = UniversalValue(
            Polyhedron.top(),
            {all1: Polyhedron.of(Constraint.ge(v(T.elem("n", "y1")), 0))},
        )
        out = convert_value(value, src, dst)
        ord2 = GuardInstance("ORD2", ("n",))
        if ord2 in out.clauses:
            assert not out.clauses[ord2].entails(
                Constraint.le(v(T.elem("n", "y1")), v(T.elem("n", "y2")))
            )

    def test_strengthen_wrapper_universal(self):
        src = UniversalDomain(pattern_set("P2"))
        dst = UniversalDomain(pattern_set("SUCC2"))
        ord2 = GuardInstance("ORD2", ("n",))
        aux = UniversalValue(
            Polyhedron.top(),
            {
                ord2: Polyhedron.of(
                    Constraint.le(v(T.elem("n", "y1")), v(T.elem("n", "y2")))
                )
            },
        )
        out = strengthen(dst, dst.top(), aux, src)
        succ = GuardInstance("SUCC2", ("n",))
        assert succ in out.clauses


class TestTraversalInfer:
    @pytest.mark.slow  # ~3 min: full Fig. 7 product-domain traversal analysis
    def test_traversal_matches_direct_sigma(self):
        """The Fig. 7 program re-derives the quicksort strengthening."""
        domain = UniversalDomain(pattern_set("P=", "P1"))
        all_l = GuardInstance("ALL1", ("l",))
        u = UniversalValue(
            Polyhedron.of(
                Constraint.le(v(T.hd("l")), v("d")),
                Constraint.ge(v(T.length("l")), 1),
                Constraint.ge(v(T.length("n")), 1),
            ),
            {all_l: Polyhedron.of(Constraint.le(v(T.elem("l", "y1")), v("d")))},
        )
        m = MultisetValue([ms_eq("n", "l")])
        out = infer_via_traversal(domain, u, m, AM, words=["n", "l"])
        assert out.E.entails(Constraint.le(v(T.hd("n")), v("d")))
        all_n = GuardInstance("ALL1", ("n",))
        ctx = out.E.meet(all_n.guard_poly()).meet(
            out.clauses.get(all_n, Polyhedron.top())
        )
        assert ctx.entails(Constraint.le(v(T.elem("n", "y1")), v("d")))
