"""Property-based widening audit (lattice laws, mirrors
tests/test_multiset_properties.py).

The laws under test, for both ``MultisetDomain.widen`` and
``Interval``/``IntervalEnv.widen``:

- **upper bound of join**: ``join(a, b) ⊑ widen(a, b)`` (hence also
  ``a ⊑ widen(a, b)`` and ``b ⊑ widen(a, b)``);
- **stabilization**: iterating ``w := widen(w, join(w, b_i))`` along any
  increasing chain reaches a fixpoint in boundedly many steps;
- **γ-monotonicity** (AM): any concrete witness of either argument
  satisfies the widened value.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.numeric.intervals import Interval, IntervalEnv

AM = MultisetDomain()
WORDS = ["a", "b", "c"]
TERMS = [T.mhd(w) for w in WORDS] + [T.mtl(w) for w in WORDS] + ["d"]


@st.composite
def row_st(draw):
    size = draw(st.integers(min_value=2, max_value=4))
    terms = draw(
        st.lists(st.sampled_from(TERMS), min_size=size, max_size=size, unique=True)
    )
    coeffs = draw(
        st.lists(st.sampled_from([-2, -1, 1, 2]), min_size=size, max_size=size)
    )
    return {t: Fraction(k) for t, k in zip(terms, coeffs)}


@st.composite
def value_st(draw):
    rows = draw(st.lists(row_st(), min_size=0, max_size=3))
    return MultisetValue(rows)


@st.composite
def env_st(draw):
    words = {}
    for w in WORDS:
        words[w] = draw(st.lists(st.integers(-3, 3), min_size=1, max_size=4))
    data = {"d": draw(st.integers(-3, 3))}
    return words, data


# -- AM ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(value_st(), value_st())
def test_am_widen_is_upper_bound_of_join(v1, v2):
    w = AM.widen(v1, v2)
    j = AM.join(v1, v2)
    assert AM.leq(j, w)
    assert AM.leq(v1, w)
    assert AM.leq(v2, w)


@settings(max_examples=40, deadline=None)
@given(st.lists(value_st(), min_size=1, max_size=5))
def test_am_widen_stabilizes_on_increasing_chains(values):
    # build an increasing chain by cumulative joins, then widen along it
    chain = []
    acc = AM.bottom()
    for v in values:
        acc = AM.join(acc, v)
        chain.append(acc)
    w = chain[0]
    steps = 0
    for v in chain[1:] + chain:  # replay the chain twice: must be stable
        nxt = AM.widen(w, AM.join(w, v))
        if not AM.leq(nxt, w):
            w = nxt
            steps += 1
    # vocabulary has <= len(TERMS) dimensions: the row space can only
    # lose rank that many times
    assert steps <= len(TERMS) + 1


@settings(max_examples=40, deadline=None)
@given(value_st(), value_st(), env_st())
def test_am_widen_gamma_monotone(v1, v2, env):
    words, data = env
    w = AM.widen(v1, v2)
    if AM.satisfied_by(v1, words, data) or AM.satisfied_by(v2, words, data):
        assert AM.satisfied_by(w, words, data)


# -- intervals ------------------------------------------------------------------

BOUND = st.one_of(st.none(), st.integers(-6, 6).map(Fraction))


@st.composite
def interval_st(draw):
    iv = Interval(draw(BOUND), draw(BOUND))
    return iv


@st.composite
def interval_env_st(draw):
    if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        return IntervalEnv.bottom()
    names = draw(
        st.lists(st.sampled_from(["x", "y", "z"]), max_size=3, unique=True)
    )
    return IntervalEnv({n: draw(interval_st()) for n in names})


@settings(max_examples=80, deadline=None)
@given(interval_st(), interval_st())
def test_interval_widen_is_upper_bound_of_join(a, b):
    w = a.widen(b)
    j = a.join(b)
    assert j.leq(w)
    assert a.leq(w)
    assert b.leq(w)


@settings(max_examples=60, deadline=None)
@given(interval_st(), st.lists(interval_st(), min_size=1, max_size=6))
def test_interval_widen_stabilizes(a, others):
    w = a
    steps = 0
    for b in others + others:
        nxt = w.widen(w.join(b))
        if not nxt.leq(w):
            w = nxt
            steps += 1
    # each unstable step drops at least one finite bound to infinity;
    # starting from an empty interval spends one extra step escaping bottom
    assert steps <= (3 if a.is_empty() else 2)


@settings(max_examples=80, deadline=None)
@given(interval_env_st(), interval_env_st())
def test_interval_env_widen_is_upper_bound_of_join(a, b):
    w = a.widen(b)
    j = a.join(b)
    assert j.leq(w)
    assert a.leq(w)
    assert b.leq(w)


@settings(max_examples=40, deadline=None)
@given(interval_env_st(), st.lists(interval_env_st(), min_size=1, max_size=5))
def test_interval_env_widen_stabilizes(a, others):
    w = a
    steps = 0
    for b in others + others:
        nxt = w.widen(w.join(b))
        if not nxt.leq(w):
            w = nxt
            steps += 1
    # <= 3 tracked variables x 2 bounds each, plus key-set shrinking
    assert steps <= 7


@settings(max_examples=80, deadline=None)
@given(interval_env_st(), interval_env_st(), st.integers(-6, 6))
def test_interval_env_widen_gamma_monotone(a, b, x):
    """A point in γ(a) or γ(b) stays inside γ(widen(a, b))."""
    w = a.widen(b)
    fx = Fraction(x)
    for env in (a, b):
        if env.is_bottom():
            continue
        if env.get("x").contains(fx):
            assert w.is_bottom() is False
            assert w.get("x").contains(fx) or not _point_in(env, {"x": fx})
    # stronger: if a full point satisfies a, it satisfies w
    point = {"x": fx, "y": Fraction(0), "z": Fraction(0)}
    if _point_in(a, point) or _point_in(b, point):
        assert _point_in(w, point)


def _point_in(env: IntervalEnv, point) -> bool:
    if env.is_bottom():
        return False
    return all(
        env.get(var).contains(val) for var, val in point.items()
    )
