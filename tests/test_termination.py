"""The termination prover (DESIGN §12): discovery, verdicts, refutation.

Covers the subsystem's public contract end to end:

- **loop discovery** is dominator-based, so nested loops get separate
  regions and the inner entry edge is never mistaken for a back edge;
- **corpus goldens**: every file under ``tests/corpus/terminating`` is
  certified with zero possibly-nonterminating alarms, every file under
  ``tests/corpus/nonterminating`` is flagged, and both match committed
  expected-findings JSON byte for byte;
- **honest budgets**: an exhausted wall-clock budget degrades to
  ``unknown`` plus a ``checker.incomplete`` note, never a stall or an
  invented verdict;
- **refutation**: the concrete cross-checker catches a prover that lies
  (the mutant test) and stays silent on sound certificates;
- **Table 1**: every benchmark procedure gets a verdict, none is a
  false alarm, and at least 80% are proved terminating (slow lane).
"""

import json
from pathlib import Path

import pytest

from repro.checker.__main__ import main as lint_main
from repro.checker.crosscheck import CrossCheckConfig
from repro.checker.driver import CheckOptions, check_source
from repro.checker.findings import (
    POSSIBLY_NONTERMINATING,
    RULE_SAFETY_TERMINATION,
    TERMINATING,
    UNKNOWN,
)
from repro.core.api import Analyzer
from repro.fuzz.__main__ import main as fuzz_main
from repro.lang.benchlib import TABLE1, benchmark_program
from repro.termination import (
    TerminationOptions,
    check_termination,
    find_loops,
    loop_candidates,
)
from repro.termination.crosscheck import TerminationCrossChecker

CORPUS = Path(__file__).parent / "corpus"
TERMINATING_DIR = CORPUS / "terminating"
NONTERMINATING_DIR = CORPUS / "nonterminating"

CHECK = CheckOptions(tier="termination", include_safe=True)

#: proc name and deterministic interpreter inputs per corpus file, for
#: the concrete cross-check lane.
CORPUS_RUNS = {
    "list_walk": ("walk", [[[1, 2, 3]], [[]]]),
    "countdown": ("countdown", [[3], [0], [-2]]),
    "tail_recursion": ("length", [[[5, 1]], [[]]]),
    "nested_sweep": ("sweep", [[[2, 4, 6]], [[]]]),
}


def _finding_tuples(report):
    return [
        {
            "ruleId": f.rule_id,
            "verdict": f.verdict,
            "procedure": f.procedure,
            "line": f.line,
        }
        for f in report.findings
    ]


# -- loop discovery and candidates ---------------------------------------------


class TestLoopDiscovery:
    def test_nested_loops_have_separate_regions(self):
        source = (TERMINATING_DIR / "nested_sweep.lisl").read_text()
        cfg = Analyzer.from_source(source).icfg.cfg("sweep")
        loops = find_loops(cfg)
        assert len(loops) == 2
        outer, inner = sorted(loops, key=lambda l: len(l.region), reverse=True)
        # Dominator-based back edges: the inner loop's entry edge is
        # reachable from the inner head around the outer loop, but the
        # inner head does not dominate it, so the inner region stays a
        # strict subset of the outer one.
        assert inner.region < outer.region
        assert inner.head != outer.head
        for loop in loops:
            assert all(src in loop.region for src in loop.back_srcs)

    def test_straightline_body_has_no_loops(self):
        cfg = Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        ).icfg.cfg("id")
        assert find_loops(cfg) == []

    def test_guard_and_advanced_pointer_candidates(self):
        source = (TERMINATING_DIR / "list_walk.lisl").read_text()
        cfg = Analyzer.from_source(source).icfg.cfg("walk")
        (loop,) = find_loops(cfg)
        labels = [c.label for c in loop_candidates(cfg, loop)]
        assert "pathlen(c)" in labels

    def test_data_gap_candidate(self):
        source = (TERMINATING_DIR / "countdown.lisl").read_text()
        cfg = Analyzer.from_source(source).icfg.cfg("countdown")
        (loop,) = find_loops(cfg)
        labels = [c.label for c in loop_candidates(cfg, loop)]
        assert "i-0" in labels


# -- corpus gates ---------------------------------------------------------------


@pytest.mark.parametrize(
    "path", sorted(TERMINATING_DIR.glob("*.lisl")), ids=lambda p: p.stem
)
def test_terminating_corpus_is_certified(path):
    report = check_source(path.read_text(), CHECK, path=str(path))
    golden = json.loads(path.with_suffix(".expected.json").read_text())
    assert _finding_tuples(report) == golden["findings"]
    verdicts = {f.verdict for f in report.findings}
    assert verdicts == {TERMINATING}  # zero false alarms, zero unknowns
    assert report.ok


@pytest.mark.parametrize(
    "path", sorted(NONTERMINATING_DIR.glob("*.lisl")), ids=lambda p: p.stem
)
def test_nonterminating_corpus_is_flagged(path):
    report = check_source(path.read_text(), CHECK, path=str(path))
    golden = json.loads(path.with_suffix(".expected.json").read_text())
    assert _finding_tuples(report) == golden["findings"]
    verdicts = [f.verdict for f in report.findings]
    assert POSSIBLY_NONTERMINATING in verdicts
    assert TERMINATING not in verdicts
    assert not report.ok


def test_loop_free_procedure_is_terminating():
    report = check_termination(
        Analyzer.from_source(
            "proc id(x: list) returns (r: list) { r = x; }"
        )
    )
    assert report.proc_status == {"id": "ok"}
    assert report.proc_verdict("id") == TERMINATING
    assert report.findings(include_safe=True) == []


def test_mutual_recursion_is_honest_unknown():
    source = (
        "proc even(n: int) returns (r: int) {\n"
        "  local m: int;\n"
        "  if (n > 0) { m = n - 1; r = odd(m); } else { r = 1; }\n"
        "}\n"
        "proc odd(n: int) returns (r: int) {\n"
        "  local m: int;\n"
        "  if (n > 0) { m = n - 1; r = even(m); } else { r = 0; }\n"
        "}\n"
    )
    report = check_termination(Analyzer.from_source(source))
    for proc in ("even", "odd"):
        assert report.proc_verdict(proc) == UNKNOWN
    messages = [s.message for s in report.sites]
    assert any("outside the prover's scope" in m for m in messages)


# -- honest budget degradation --------------------------------------------------


class TestBudget:
    def test_exhausted_budget_degrades_to_unknown(self):
        source = (TERMINATING_DIR / "list_walk.lisl").read_text()
        report = check_termination(
            Analyzer.from_source(source), TerminationOptions(max_seconds=0.0)
        )
        assert report.proc_status["walk"].startswith("budget")
        assert report.proc_verdict("walk") == UNKNOWN
        rules = {f.rule_id for f in report.findings(include_safe=True)}
        assert rules == {RULE_SAFETY_TERMINATION, "checker.incomplete"}

    def test_budget_threads_through_the_checker_tier(self):
        source = (TERMINATING_DIR / "list_walk.lisl").read_text()
        opts = CheckOptions(
            tier="termination",
            include_safe=True,
            termination=TerminationOptions(max_seconds=0.0),
        )
        report = check_source(source, opts)
        assert "checker.incomplete" in {f.rule_id for f in report.findings}
        assert report.stats["termination_verdicts"].get(TERMINATING, 0) == 0


# -- CLI -----------------------------------------------------------------------


class TestCLI:
    def test_tier_termination_exit_codes(self, capsys):
        good = str(TERMINATING_DIR / "list_walk.lisl")
        bad = str(NONTERMINATING_DIR / "stuck_walk.lisl")
        assert lint_main([good, "--tier", "termination"]) == 0
        assert lint_main([bad, "--tier", "termination"]) == 1
        capsys.readouterr()

    def test_rules_flag_implies_termination_tier(self, capsys):
        bad = str(NONTERMINATING_DIR / "spin_counter.lisl")
        assert lint_main([bad, "--rules", "safety.termination"]) == 1
        capsys.readouterr()

    def test_mixing_termination_with_other_rules_is_usage_error(self, capsys):
        path = str(TERMINATING_DIR / "list_walk.lisl")
        code = lint_main(
            [path, "--rules", "safety.termination,lint.dead-store"]
        )
        assert code == 2
        capsys.readouterr()


# -- concrete cross-validation --------------------------------------------------


class TestCrossCheck:
    def test_mutant_prover_is_caught(self, monkeypatch):
        # Make the prover lie: every entailment "holds", so the stuck
        # walk gets a terminating certificate for pathlen(x).  A concrete
        # run then observes the measure not decreasing at a head arrival
        # — the contradiction the fuzz lane exists to catch.
        from repro.termination import decrease

        monkeypatch.setattr(decrease, "_entails", lambda *args: True)
        source = (NONTERMINATING_DIR / "stuck_walk.lisl").read_text()
        checker = TerminationCrossChecker(
            CrossCheckConfig(domain="au", max_interp_steps=2000)
        )
        findings = checker.check_source(source, "stuck", [[[7, 8, 9]]])
        assert findings
        assert any("did not decrease" in f.message for f in findings)

    @pytest.mark.parametrize(
        "path", sorted(TERMINATING_DIR.glob("*.lisl")), ids=lambda p: p.stem
    )
    def test_honest_certificates_survive_concrete_runs(self, path):
        root, views_list = CORPUS_RUNS[path.stem]
        checker = TerminationCrossChecker()
        findings = checker.check_source(path.read_text(), root, views_list)
        assert findings == []

    def test_fuzz_cli_lane(self, capsys):
        code = fuzz_main(
            ["--check-termination", "--iters", "4", "--seed", "3",
             "--rounds", "2"]
        )
        assert code == 0
        assert "fuzzing done: 0 failure(s)" in capsys.readouterr().out

    def test_fuzz_cli_flags_are_exclusive(self, capsys):
        code = fuzz_main(["--check-safety", "--check-termination"])
        assert code == 2
        capsys.readouterr()


# -- service integration --------------------------------------------------------


class TestService:
    def test_check_verb_termination_tier_warm_cache(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import AnalysisServer, ServerConfig

        source = (TERMINATING_DIR / "list_walk.lisl").read_text()
        srv = AnalysisServer(
            ServerConfig(port=0, jobs=0, store_dir=str(tmp_path / "store"))
        )
        srv.start()
        try:
            _, (host, port) = srv.address
            with ServiceClient.connect_tcp(host, port) as client:
                cold = client.check(source, tier="termination")
                assert cold["ok"]
                assert cold["result"]["checked"] == ["walk"]
                assert cold["result"]["reused"] == []
                records = cold["result"]["diagnostics"]["runs"][0]["results"]
                assert [r["verdict"] for r in records] == [TERMINATING]

                warm = client.check(source, tier="termination")
                assert warm["result"]["checked"] == []
                assert warm["result"]["reused"] == ["walk"]
                warm_records = (
                    warm["result"]["diagnostics"]["runs"][0]["results"]
                )
                assert warm_records == records
        finally:
            if not srv.stopped.is_set():
                srv.stop()


# -- Table 1 --------------------------------------------------------------------

FAST_PROCS = ("create", "addfst", "addlst", "delfst", "dellst", "init", "max")


class TestTable1:
    def test_fast_subset_is_certified(self):
        report = check_termination(
            Analyzer(benchmark_program()),
            TerminationOptions(procs=list(FAST_PROCS), max_seconds=120.0),
        )
        for proc in FAST_PROCS:
            assert report.proc_status[proc] == "ok"
            assert report.proc_verdict(proc) == TERMINATING

    @pytest.mark.slow
    def test_full_table1_meets_the_bar(self):
        names = [e.name for e in TABLE1]
        report = check_termination(
            Analyzer(benchmark_program()),
            TerminationOptions(procs=names, max_seconds=60.0 * len(names)),
        )
        verdicts = {name: report.proc_verdict(name) for name in names}
        assert set(verdicts) == set(names)  # every proc got a verdict
        assert POSSIBLY_NONTERMINATING not in verdicts.values()  # no alarms
        proved = sum(1 for v in verdicts.values() if v == TERMINATING)
        assert proved >= 0.8 * len(names)
