"""Unit tests for the exact rational simplex solver."""

from fractions import Fraction

from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.simplex import (
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    entails,
    is_feasible,
    sample_point,
    solve_lp,
)


def v(name):
    return LinExpr.var(name)


class TestSolveLP:
    def test_simple_minimum(self):
        # min x subject to x >= 3
        res = solve_lp([Constraint.ge(v("x"), 3)], v("x"))
        assert res.status == OPTIMAL
        assert res.value == 3

    def test_simple_maximum(self):
        res = solve_lp([Constraint.le(v("x"), 7)], v("x"), maximize=True)
        assert res.status == OPTIMAL
        assert res.value == 7

    def test_unbounded(self):
        res = solve_lp([Constraint.ge(v("x"), 0)], v("x"), maximize=True)
        assert res.status == UNBOUNDED

    def test_infeasible(self):
        res = solve_lp(
            [Constraint.ge(v("x"), 1), Constraint.le(v("x"), 0)], v("x")
        )
        assert res.status == INFEASIBLE

    def test_free_variables_negative_optimum(self):
        # min x subject to x >= -5 (needs the x = x+ - x- split)
        res = solve_lp([Constraint.ge(v("x"), -5)], v("x"))
        assert res.status == OPTIMAL
        assert res.value == -5

    def test_equality_constraint(self):
        res = solve_lp(
            [Constraint.eq(v("x") + v("y"), 10), Constraint.ge(v("x"), 4)],
            v("y"),
            maximize=True,
        )
        assert res.status == OPTIMAL
        assert res.value == 6

    def test_rational_optimum(self):
        # min x st 3x >= 1
        res = solve_lp([Constraint.ge(v("x").scale(3), 1)], v("x"))
        assert res.status == OPTIMAL
        assert res.value == Fraction(1, 3)

    def test_two_dim_polytope(self):
        cons = [
            Constraint.ge(v("x"), 0),
            Constraint.ge(v("y"), 0),
            Constraint.le(v("x") + v("y"), 4),
        ]
        res = solve_lp(cons, v("x") + v("y").scale(2), maximize=True)
        assert res.status == OPTIMAL
        assert res.value == 8

    def test_objective_with_constant(self):
        res = solve_lp([Constraint.ge(v("x"), 2)], v("x") + 10)
        assert res.value == 12

    def test_no_constraints_constant_objective(self):
        res = solve_lp([], LinExpr.const_expr(5))
        assert res.status == OPTIMAL
        assert res.value == 5

    def test_no_constraints_variable_objective(self):
        res = solve_lp([], v("x"))
        assert res.status == UNBOUNDED

    def test_degenerate_cycling_guard(self):
        # A classically degenerate problem; Bland's rule must terminate.
        cons = [
            Constraint.le(v("x1").scale(Fraction(1, 4)) - v("x2").scale(60) - v("x3").scale(Fraction(1, 25)) + v("x4").scale(9), 0),
            Constraint.le(v("x1").scale(Fraction(1, 2)) - v("x2").scale(90) - v("x3").scale(Fraction(1, 50)) + v("x4").scale(3), 0),
            Constraint.le(v("x3"), 1),
            Constraint.ge(v("x1"), 0),
            Constraint.ge(v("x2"), 0),
            Constraint.ge(v("x3"), 0),
            Constraint.ge(v("x4"), 0),
        ]
        obj = v("x1").scale(Fraction(-3, 4)) + v("x2").scale(150) - v("x3").scale(Fraction(1, 50)) + v("x4").scale(6)
        res = solve_lp(cons, obj)
        assert res.status == OPTIMAL
        assert res.value == Fraction(-1, 20)


class TestEntailsAndFeasibility:
    def test_feasible(self):
        assert is_feasible([Constraint.ge(v("x"), 0)])

    def test_infeasible(self):
        assert not is_feasible([Constraint.eq(v("x"), 1), Constraint.eq(v("x"), 2)])

    def test_entails_basic(self):
        cons = [Constraint.ge(v("x"), 2)]
        assert entails(cons, Constraint.ge(v("x"), 1))
        assert not entails(cons, Constraint.ge(v("x"), 3))

    def test_entails_equality_needs_both_directions(self):
        cons = [Constraint.ge(v("x"), 1), Constraint.le(v("x"), 1)]
        assert entails(cons, Constraint.eq(v("x"), 1))
        assert not entails([Constraint.ge(v("x"), 1)], Constraint.eq(v("x"), 1))

    def test_bottom_entails_everything(self):
        cons = [Constraint.ge(v("x"), 1), Constraint.le(v("x"), 0)]
        assert entails(cons, Constraint.eq(v("y"), 42))

    def test_entails_relational(self):
        cons = [Constraint.le(v("x"), v("y")), Constraint.le(v("y"), v("z"))]
        assert entails(cons, Constraint.le(v("x"), v("z")))
        assert not entails(cons, Constraint.le(v("z"), v("x")))

    def test_sample_point(self):
        cons = [Constraint.ge(v("x"), 2), Constraint.le(v("x"), 3)]
        point = sample_point(cons)
        assert point is not None
        assert 2 <= point["x"] <= 3

    def test_sample_point_infeasible(self):
        cons = [Constraint.ge(v("x"), 2), Constraint.le(v("x"), 1)]
        assert sample_point(cons) is None

    def test_sample_point_satisfies_all(self):
        cons = [
            Constraint.ge(v("x") + v("y"), 3),
            Constraint.le(v("x") - v("y"), 1),
            Constraint.ge(v("y"), 0),
        ]
        point = sample_point(cons)
        for c in cons:
            assert c.holds(point)
