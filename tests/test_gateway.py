"""Tests of the multi-tenant analysis gateway (``repro.gateway``).

Five layers:

- **scheduler**: start-time fair queuing dispatch order, weights, bounded
  per-tenant queues (shed with a retry hint), deadline shedding — all as
  a pure data structure, deterministically;
- **store tier**: pack compaction roundtrip (reads stay correct through
  and after compaction, concurrent writers are never lost), byte-budget
  GC keeps a seeded 10k-key store under budget, and warm re-analysis
  after eviction stays hash-identical to cold (a miss just recomputes);
- **sessions**: LRU residency bound with eviction accounting;
- **gateway end-to-end**: per-tenant isolation, fairness under a gated
  dispatcher (a greedy flood cannot starve a light tenant), deterministic
  shed, deadline rejection, a SIGKILLed worker mid-request surfacing as a
  structured error while the gateway survives;
- **metrics**: the Prometheus exposition document over NDJSON and HTTP.
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.core.api import Analyzer
from repro.gateway.scheduler import FairScheduler, SchedulerConfig, Shed
from repro.gateway.server import AnalysisGateway, GatewayConfig, GatewayThread
from repro.gateway.sessions import SessionManager
from repro.gateway.storetier import CompactingStore, StoreBudget
from repro.parallel.store import PersistentSummaryStore
from repro.service.client import ServiceClient
from repro.service.diagnostics import envelope_records
from repro.service.session import Session

CHAIN = """
proc leaf(x: list) returns (r: list) { r = x; }
proc mid(x: list) returns (r: list) { r = leaf(x); }
proc top(x: list) returns (r: list) { r = mid(x); }
proc other(x: list) returns (r: list) { r = x; }
"""

ASSERT_SRC = """
proc f(n: int) returns (r: int) {
  r = n + 1;
  assert r > n;
  assert r > n + 1;
}
"""


def edit_procedure(source: str, proc: str) -> str:
    """Scripted single-procedure edit (same helper as test_service)."""
    at = source.index(f"proc {proc}(")
    open_brace = source.index("{", at)
    depth, close_brace = 0, -1
    for i in range(open_brace, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                close_brace = i
                break
    assert close_brace > open_brace
    return (
        source[: open_brace + 1]
        + " local __edit: int; "
        + source[open_brace + 1 : close_brace]
        + " __edit = 1; "
        + source[close_brace:]
    )


# -- scheduler ------------------------------------------------------------------


class TestFairScheduler:
    def test_flood_cannot_starve_light_tenant(self):
        sched = FairScheduler(SchedulerConfig(tenant_queue_limit=100))
        for i in range(10):
            sched.submit("greedy", f"g{i}")
        sched.submit("light", "l0")
        order = [item.payload for item in sched.drain()]
        # The light request's tag ties the flood's *first* tag, so it is
        # dispatched second at the latest — not after the whole backlog.
        assert order.index("l0") <= 1
        assert order[0] == "g0"  # admission order breaks the tie

    def test_interleaving_is_weight_proportional(self):
        sched = FairScheduler(
            SchedulerConfig(
                tenant_queue_limit=100, tenant_weights={"paid": 2.0}
            )
        )
        for i in range(8):
            sched.submit("paid", f"p{i}")
            sched.submit("free", f"f{i}")
        first8 = [item.tenant for item in sched.drain()][:8]
        # Weight 2 gets ~2 of every 3 dispatches while both are backlogged.
        assert first8.count("paid") >= 5

    def test_tenant_queue_bound_sheds_with_hint(self):
        sched = FairScheduler(SchedulerConfig(tenant_queue_limit=2))
        sched.submit("t", 1)
        sched.submit("t", 2)
        with pytest.raises(Shed) as exc:
            sched.submit("t", 3)
        assert exc.value.rule_id == "queue.shed"
        assert exc.value.retry_after_ms > 0
        # Another tenant is unaffected by the full queue.
        sched.submit("other", 4)
        assert sched.depth("other") == 1

    def test_expired_deadline_is_shed_at_admission(self):
        sched = FairScheduler()
        with pytest.raises(Shed) as exc:
            sched.submit("t", 1, deadline=time.monotonic() - 0.1)
        assert exc.value.rule_id == "gateway.deadline"
        assert exc.value.retry_after_ms == 0

    def test_accounting(self):
        sched = FairScheduler(SchedulerConfig(tenant_queue_limit=1))
        sched.submit("a", 1)
        with pytest.raises(Shed):
            sched.submit("a", 2)
        sched.next()
        rows = sched.tenants()
        assert rows["a"]["served"] == 1
        assert rows["a"]["shed"] == 1
        assert rows["a"]["depth"] == 0


# -- store tier -----------------------------------------------------------------


class TestCompactingStore:
    def test_pack_roundtrip_preserves_every_key(self, tmp_path):
        store = CompactingStore(str(tmp_path), StoreBudget(compact_min_loose=1))
        for i in range(50):
            store.inner.put(("k", i), {"v": i})
        assert store.compact() == 50
        assert store.inner.loose_count() == 0
        assert store.inner.packed_count() == 50
        for i in range(50):
            assert store.get(("k", i)) == {"v": i}
            assert ("k", i) in store.inner

    def test_writer_racing_compaction_is_never_lost(self, tmp_path):
        # A writer that lands a loose file *after* compaction scanned the
        # directory keeps its entry: compaction only unlinks the files it
        # packed, and reads prefer loose files over packs.
        store = CompactingStore(str(tmp_path))
        writer = PersistentSummaryStore(str(tmp_path))  # separate handle
        for i in range(20):
            store.inner.put(("k", i), {"v": i})
        real_listdir = os.listdir
        raced = {"done": False}

        def listdir_then_write(path):
            names = real_listdir(path)
            if not raced["done"] and path == str(tmp_path):
                raced["done"] = True
                writer.put(("late", 99), {"late": True})
            return names

        import repro.gateway.storetier as storetier_mod

        orig = storetier_mod.os.listdir
        storetier_mod.os.listdir = listdir_then_write
        try:
            store.compact()
        finally:
            storetier_mod.os.listdir = orig
        assert store.get(("late", 99)) == {"late": True}
        for i in range(20):
            assert store.get(("k", i)) == {"v": i}

    def test_generations_stack_and_newest_wins(self, tmp_path):
        store = CompactingStore(str(tmp_path))
        store.inner.put(("a",), {"gen": 1})
        assert store.compact() == 1
        store.inner.put(("b",), {"gen": 2})
        assert store.compact() == 1
        assert store.inner.stats()["packs"] == 2
        assert store.get(("a",)) == {"gen": 1}
        assert store.get(("b",)) == {"gen": 2}

    def test_gc_keeps_10k_key_store_under_budget(self, tmp_path):
        budget = 256 * 1024
        store = CompactingStore(
            str(tmp_path),
            StoreBudget(
                max_bytes=budget, compact_min_loose=1000, check_interval=256
            ),
        )
        for i in range(10_000):
            store.put(("key", i), {"summary": i, "payload": "x" * 32})
        store.maintain()
        assert store.total_bytes() <= budget
        assert store.compactions >= 1  # generations were packed...
        assert store.gc_evicted_files >= 1  # ...and the oldest evicted
        # Whatever survived still reads back exactly.
        alive = sum(
            1 for i in range(10_000) if store.get(("key", i)) is not None
        )
        assert 0 < alive < 10_000

    def test_warm_reanalysis_after_eviction_matches_cold(self, tmp_path):
        # Evicting the whole store between runs must not change results:
        # a store miss recomputes the byte-identical summaries.
        store_dir = str(tmp_path / "store")
        session = Session(
            Analyzer.from_source(CHAIN).program, store_dir=store_dir, jobs=0
        )
        session.analyze(domains=("am",))
        CompactingStore(store_dir).gc(max_bytes=0)  # evict everything
        edited = edit_procedure(CHAIN, "leaf")
        session.update_source(edited)
        warm = session.analyze(domains=("am",))
        cold = Analyzer.from_source(edited).analyze_batch(
            domains=("am",), jobs=0
        )
        cold_hashes = {
            out.task_id: out.result.summary_hashes for out in cold.outcomes
        }
        warm_hashes = {
            tid: out.summary_hashes for tid, out in warm.outputs.items()
        }
        assert warm_hashes == cold_hashes
        session.close()


# -- sessions -------------------------------------------------------------------


class TestSessionManager:
    def test_lru_eviction_bound(self, tmp_path):
        programs = {
            name: f"proc {name}(x: list) returns (r: list) {{ r = x; }}"
            for name in ("a", "b", "c")
        }
        mgr = SessionManager(max_sessions=2, store_dir=str(tmp_path))
        for tenant in ("a", "b", "c"):
            mgr.acquire(tenant, "p", Analyzer.from_source(
                programs[tenant]).program)
        assert len(mgr) == 2
        assert mgr.evictions == 1
        # 'a' (the LRU victim) is gone; 'b' and 'c' are resident.
        assert set(mgr.describe()) == {"b/p", "c/p"}
        mgr.close()

    def test_touch_refreshes_recency(self, tmp_path):
        program = Analyzer.from_source(CHAIN).program
        mgr = SessionManager(max_sessions=2, store_dir=str(tmp_path))
        mgr.acquire("a", "p", program)
        mgr.acquire("b", "p", program)
        mgr.acquire("a", "p", program)  # touch: 'a' is now most recent
        mgr.acquire("c", "p", program)  # evicts 'b'
        assert set(mgr.describe()) == {"a/p", "c/p"}
        mgr.close()


# -- gateway end-to-end ---------------------------------------------------------


def _lines_client(gw):
    """Raw pipelining socket: send many request lines, then collect the
    replies (the synchronous ServiceClient is strictly request/reply)."""
    _, (host, port) = gw.address
    sock = socket.create_connection((host, port), timeout=30)
    fh = sock.makefile("rwb")
    return sock, fh


def _send(fh, **request):
    fh.write((json.dumps(request) + "\n").encode())
    fh.flush()


def _recv(fh):
    return json.loads(fh.readline())


@pytest.fixture
def gateway(tmp_path):
    gw = GatewayThread(
        GatewayConfig(
            jobs=0,
            workers=1,
            tenant_queue_limit=4,
            store_dir=str(tmp_path / "store"),
        )
    ).start()
    yield gw
    gw.stop()


def _client(gw) -> ServiceClient:
    _, (host, port) = gw.address
    return ServiceClient.connect_tcp(host, port)


class TestGateway:
    def test_tenants_keep_independent_sessions(self, gateway):
        with _client(gateway) as client:
            a1 = client.analyze(CHAIN, domains=["am"], tenant="alice")
            assert a1["ok"] and a1["result"]["incremental"]["reused"] == 0
            b1 = client.analyze(CHAIN, domains=["am"], tenant="bob")
            assert b1["ok"]
            # bob edits; alice's warm session is untouched.
            edited = edit_procedure(CHAIN, "leaf")
            b2 = client.analyze(edited, domains=["am"], tenant="bob")
            assert b2["result"]["delta"]["changed"] == ["leaf"]
            a2 = client.analyze(CHAIN, domains=["am"], tenant="alice")
            assert a2["result"]["incremental"]["analyzed"] == 0  # all warm
            status = client.status()["result"]
            assert status["tier"] == "gateway"
            assert status["sessions_resident"] == 2
            served = {
                name: row["served"]
                for name, row in status["tenants"].items()
            }
            assert served == {"alice": 2, "bob": 2}

    def test_check_verb_warm_reuse_per_tenant(self, gateway):
        with _client(gateway) as client:
            cold = client.check(CHAIN, tenant="alice")
            assert cold["ok"] is True
            assert len(cold["result"]["checked"]) == 4
            warm = client.check(CHAIN, tenant="alice")
            assert warm["result"]["reused"] == ["leaf", "mid", "other", "top"]
            # A different tenant starts cold (no cross-tenant cache).
            other = client.check(CHAIN, tenant="bob")
            assert len(other["result"]["checked"]) == 4

    def test_gated_dispatcher_fairness_and_deterministic_shed(
        self, gateway, monkeypatch
    ):
        """With the single dispatcher gated on a slow request, a greedy
        tenant fills its bounded queue (deterministic sheds) while a
        light tenant's request overtakes the whole backlog."""
        import repro.gateway.server as gateway_mod

        gate = threading.Event()
        real = gateway_mod.run_assert_request

        def gated(request):
            gate.wait(30)
            return real(request)

        monkeypatch.setattr(gateway_mod, "run_assert_request", gated)
        sock, fh = _lines_client(gateway)
        try:
            # One request occupies the (gated) dispatcher...
            _send(fh, verb="assert", id=0, tenant="greedy", source=ASSERT_SRC)
            deadline = time.monotonic() + 10
            while gateway.gateway.telemetry.counters.get(
                "requests.assert", 0
            ) < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            while (gateway.gateway.scheduler.tenants().get("greedy", {})
                   .get("served", 0) < 1) and time.monotonic() < deadline:
                time.sleep(0.01)
            # ...the flood fills greedy's queue (limit 4): 4 admitted,
            # the rest shed deterministically with a retry hint.
            for i in range(1, 7):
                _send(fh, verb="assert", id=i, tenant="greedy",
                      source=ASSERT_SRC)
            # The light tenant's request is admitted behind the flood.
            _send(fh, verb="analyze", id=100, tenant="light", source=CHAIN,
                  domains=["am"])
            sheds = [_recv(fh) for _ in range(2)]  # ids 5, 6 overflow
            for response in sheds:
                assert response["id"] in (5, 6)
                assert response["error"]["kind"] == "shed"
                assert response["error"]["retry_after_ms"] > 0
                records = envelope_records(response["diagnostics"])
                assert records[0]["ruleId"] == "queue.shed"
            gate.set()
            rest = [_recv(fh) for _ in range(6)]  # 0..4 + light's 100
            order = [r["id"] for r in rest]
            # SFQ: light's single request carries a virtual tag that ties
            # the *first* queued greedy request, so it is dispatched after
            # at most one of the backlog — never behind the whole flood.
            assert order[0] == 0
            assert order.index(100) <= 2
            assert order.index(100) < min(order.index(i) for i in (2, 3, 4))
            light = rest[order.index(100)]
            assert light["ok"] is True
            greedy_waits = [
                r["telemetry"]["queue_wait_s"] for r in rest if r["id"] in
                (3, 4)
            ]
            assert light["telemetry"]["queue_wait_s"] < min(greedy_waits)
        finally:
            gate.set()
            sock.close()

    def test_deadline_expired_is_shed_with_rule(self, gateway):
        with _client(gateway) as client:
            response = client.analyze(
                CHAIN, domains=["am"], tenant="t", deadline_ms=0
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "deadline"
            assert response["error"]["retry_after_ms"] == 0
            records = envelope_records(response["diagnostics"])
            assert records[0]["ruleId"] == "gateway.deadline"
            # The tenant is not poisoned: a normal request succeeds.
            assert client.analyze(CHAIN, domains=["am"], tenant="t")["ok"]

    def test_session_lru_eviction_over_gateway(self, tmp_path):
        gw = GatewayThread(
            GatewayConfig(jobs=0, workers=1, max_sessions=2,
                          store_dir=str(tmp_path / "store"))
        ).start()
        try:
            with _client(gw) as client:
                for tenant in ("a", "b", "c"):
                    assert client.analyze(
                        CHAIN, domains=["am"], tenant=tenant
                    )["ok"]
                status = client.status()["result"]
                assert status["sessions_resident"] == 2
                assert status["sessions_evicted"] == 1
                # The evicted tenant still works (recreated, store-warm).
                again = client.analyze(CHAIN, domains=["am"], tenant="a")
                assert again["ok"]
        finally:
            gw.stop()

    def test_flush_and_equivalence(self, gateway):
        with _client(gateway) as client:
            assert client.analyze(CHAIN, domains=["am"], tenant="t")["ok"]
            flushed = client.flush(tenant="t")
            assert flushed["ok"] and flushed["result"]["dropped"] >= 1
            eq = client.equivalence(CHAIN, "leaf", "other")
            assert eq["ok"]

    def test_bad_requests_are_structured(self, gateway):
        sock, fh = _lines_client(gateway)
        try:
            fh.write(b"this is not json\n")
            fh.flush()
            response = _recv(fh)
            assert not response["ok"]
            assert response["error"]["kind"] == "bad_request"
            _send(fh, verb="analyze", id=2, source="proc broken(")
            response = _recv(fh)
            assert not response["ok"]
            assert "parse" in response["error"]["message"]
        finally:
            sock.close()


class TestGatewayPoolIsolation:
    """Robustness with real worker processes (jobs=1)."""

    def test_sigkilled_worker_is_structured_and_gateway_survives(
        self, tmp_path, monkeypatch
    ):
        import repro.gateway.server as gateway_mod

        def die(request):
            os.kill(os.getpid(), signal.SIGKILL)

        gw = GatewayThread(
            GatewayConfig(jobs=1, workers=1, hard_grace=5.0,
                          store_dir=str(tmp_path / "store"))
        ).start()
        try:
            monkeypatch.setattr(gateway_mod, "run_assert_request", die)
            with _client(gw) as client:
                response = client.check_asserts(ASSERT_SRC, tenant="t")
                assert not response["ok"]
                assert response["error"]["kind"] == "crashed"
                records = envelope_records(response["diagnostics"])
                assert records[0]["ruleId"] == "worker.crashed"
                monkeypatch.undo()
                # Gateway survives; the next request succeeds.
                again = client.check_asserts(ASSERT_SRC, tenant="t")
                assert again["ok"]
                verdicts = [
                    r["verdict"] for r in again["result"]["results"]
                ]
                assert verdicts == ["pass", "fail"]
        finally:
            gw.stop()


# -- metrics --------------------------------------------------------------------


class TestMetrics:
    def test_exposition_over_ndjson_and_http(self, gateway):
        with _client(gateway) as client:
            assert client.analyze(CHAIN, domains=["am"], tenant="alice")["ok"]
            text = client.metrics()
        assert 'repro_requests_total{verb="analyze"} 1' in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_tenant_requests_total{tenant="alice"} 1' in text
        assert "repro_queue_depth 0" in text
        assert "repro_request_exec_s_count 1" in text
        assert 'repro_request_exec_s{quantile="0.5"}' in text
        # HTTP scrape of the same port returns the same document shape.
        _, (host, port) = gateway.address
        sock = socket.create_connection((host, port), timeout=10)
        sock.sendall(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
        sock.close()
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK")
        assert b"text/plain; version=0.0.4" in head
        assert b"repro_tenant_requests_total" in body

    def test_http_unknown_path_is_404(self, gateway):
        _, (host, port) = gateway.address
        sock = socket.create_connection((host, port), timeout=10)
        sock.sendall(b"GET /nope HTTP/1.0\r\n\r\n")
        data = sock.recv(65536)
        sock.close()
        assert data.startswith(b"HTTP/1.0 404")

    def test_daemon_metrics_verb_shares_renderer(self, tmp_path):
        from repro.service.server import AnalysisServer, ServerConfig

        srv = AnalysisServer(
            ServerConfig(port=0, jobs=0, store_dir=str(tmp_path / "s"))
        )
        srv.start()
        try:
            _, (host, port) = srv.address
            with ServiceClient.connect_tcp(host, port) as client:
                assert client.analyze(CHAIN, domains=["am"])["ok"]
                text = client.metrics()
            assert 'repro_requests_total{verb="analyze"} 1' in text
            assert "repro_queue_depth" in text
        finally:
            if not srv.stopped.is_set():
                srv.stop()
