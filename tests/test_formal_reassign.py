"""Regression for the fuzzer's first catch (seeds 101/140): a callee that
reassigns its list formal must not corrupt the caller's pointer.

Parameters are by-value, so after ``s = push(x)`` the caller's ``x`` still
points at the entry cell even though ``push`` moved its own ``x0`` to a
freshly pushed cell.  Pre-fix, ``compose_return`` re-bound the caller's
``x`` to NULL ("stale pointer"), which made the following
``if (x != NULL)`` falsely dead and dropped every sound exit disjunct.
The fix is two-layered: ``normalize_program`` renames assigned list
formals to fresh locals (``x$in``) so formals are never reassigned, and
``build_call_entry`` raises :class:`CutpointError` if an un-normalized
reassigning callee ever reaches composition.
"""

import pytest

from repro.core.api import Analyzer
from repro.fuzz.oracle import Oracle, OracleConfig
from repro.lang import ast as A
from repro.lang.normalize import normalize_procedure, normalize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program

SRC = """
proc push(x0: list) returns (s0: int) {
  local c0: list;
  c0 = new;
  c0->data = 1;
  c0->next = x0;
  x0 = c0;
  s0 = 0;
}

proc main(x0: list) returns (r0: list, s0: int) {
  s0 = push(x0);
  if (x0 != NULL) {
    r0 = x0->next;
  }
}
"""


def _assigned(body):
    out = set()
    for stmt in body:
        if isinstance(stmt, A.Assign):
            out.add(stmt.target)
        elif isinstance(stmt, A.Call):
            out.update(stmt.targets)
        elif isinstance(stmt, A.If):
            out |= _assigned(stmt.then_body) | _assigned(stmt.else_body)
        elif isinstance(stmt, A.While):
            out |= _assigned(stmt.body)
    return out


def test_normalize_protects_assigned_list_formals():
    program = typecheck_program(parse_program(SRC))
    norm = normalize_program(program)
    push = norm.proc("push")
    list_inputs = {p.name for p in push.inputs if p.type == A.LIST}
    assert not (_assigned(push.body) & list_inputs)
    assert any(p.name == "x0$in" for p in push.locals)


def test_normalize_leaves_untouched_formals_alone():
    program = typecheck_program(parse_program(SRC))
    main = normalize_procedure(program.proc("main"))
    assert all(p.name != "x0$in" for p in main.locals)


def test_caller_pointer_survives_reassigning_callee():
    analyzer = Analyzer.from_source(SRC)
    for domain in ("am", "au"):
        result = analyzer.analyze("main", domain=domain)
        assert result.ok
        nonnull_r0 = [
            heap
            for _, summary in result.summaries
            for heap in summary
            if heap.graph.node_of("r0") != "null"
        ]
        # with x = [d1, d2, ...] the run reaches r0 = x->next != NULL,
        # so a sound summary must keep a non-null-r0 disjunct
        assert nonnull_r0, f"{domain}: every exit disjunct lost r0"


def test_oracle_is_clean_on_the_reproducer():
    oracle = Oracle(OracleConfig(rounds=2))
    findings = oracle.check_source(SRC, "main", [[[1, 2]], [[5]], [[]]])
    assert findings == [], [f.describe() for f in findings]


def test_unnormalized_reassigning_callee_is_rejected():
    from repro.core.localheap import CutpointError, build_call_entry
    from repro.datawords.multiset import MultisetDomain
    from repro.lang.cfg import OpCall, build_cfg
    from repro.shape.abstract_heap import AbstractHeap
    from repro.shape.graph import HeapGraph

    # build the CFG from the *raw* (un-normalized) proc: push reassigns x0
    program = typecheck_program(parse_program(SRC))
    push_cfg = build_cfg(program.proc("push"))
    domain = MultisetDomain()
    graph = HeapGraph({"n0"}, {"n0": "null"}, {"x0": "n0"})
    heap = AbstractHeap(graph, domain.top())
    op = OpCall(targets=("s0",), proc="push", args=("x0",))
    with pytest.raises(CutpointError):
        build_call_entry(domain, heap, push_cfg, op)
