"""Tests of the parallel batch-analysis subsystem (``repro.parallel``).

Three layers:

- **pool**: fault isolation (a worker SIGKILLing itself mid-task is
  retried once and succeeds), budgets (cooperative and hard kills),
  dependency scheduling, deterministic submission-order join;
- **store**: atomic one-file-per-key persistence, schema-fingerprint
  self-invalidation, corrupt-entry tolerance;
- **batch determinism**: the headline property — a parallel batch run
  (jobs=4) produces byte-identical summary hashes to the sequential
  baseline (jobs=0) on every corpus entry and on the paper's benchmark
  program (the Figures 4-6 / Table 1 procedures).
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.core.api import Analyzer
from repro.engine.canon import graph_hash, heapset_hash
from repro.engine.telemetry import merge_traces
from repro.parallel import (
    PersistentSummaryStore,
    PoolTask,
    WorkerPool,
    plan_shards,
    schema_fingerprint,
)

CORPUS = Path(__file__).parent.parent / "tests" / "corpus"

# Entries whose AU analysis is heavyweight run in the slow lane only
# (mirrors tests/test_corpus_replay.py).
SLOW_ENTRIES = {"gen_seed17.lisl"}

JOBS = 4


# -- helpers --------------------------------------------------------------------


def _corpus_sources():
    from repro.fuzz.__main__ import load_corpus_entry

    params = []
    for path in sorted(CORPUS.glob("*.lisl")):
        marks = [pytest.mark.slow] if path.name in SLOW_ENTRIES else []
        params.append(pytest.param(path, marks=marks, id=path.name))
    return params


def _sequential_hashes(report):
    """(task_id -> summary_hashes) for every ok outcome of a batch."""
    out = {}
    for outcome in report.outcomes:
        assert outcome.status == "ok", outcome.describe()
        out[outcome.task_id] = outcome.result.summary_hashes
    return out


# -- worker pool ----------------------------------------------------------------


def _echo(value):
    return value


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _boom():
    raise ValueError("intentional test failure")


def _die_once(sentinel, value):
    """SIGKILL the worker on the first attempt; succeed on the retry."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _die_always():
    os.kill(os.getpid(), signal.SIGKILL)


def _check_marker(marker_dir, my_id, deps):
    """Record my start, assert every dependency already finished."""
    for dep in deps:
        assert os.path.exists(
            os.path.join(marker_dir, dep)
        ), f"{my_id} started before its dependency {dep} finished"
    with open(os.path.join(marker_dir, my_id), "w") as fh:
        fh.write("done")
    return my_id


class TestWorkerPool:
    def test_outcomes_in_submission_order(self):
        # Tasks finish out of submission order (the first sleeps longest)
        # but outcomes come back in it.
        tasks = [
            PoolTask("slow", _sleepy, args=(0.4,)),
            PoolTask("mid", _sleepy, args=(0.2,)),
            PoolTask("fast", _echo, args=("x",)),
        ]
        outcomes = WorkerPool(jobs=3).run(tasks)
        assert [o.task_id for o in outcomes] == ["slow", "mid", "fast"]
        assert all(o.ok for o in outcomes)
        assert outcomes[2].result == "x"
        assert outcomes[2].cpu_time is not None

    def test_worker_death_is_retried_and_succeeds(self, tmp_path):
        sentinel = str(tmp_path / "died-once")
        outcomes = WorkerPool(jobs=2).run(
            [PoolTask("fragile", _die_once, args=(sentinel, 42))]
        )
        (outcome,) = outcomes
        assert outcome.status == "ok"
        assert outcome.result == 42
        assert outcome.retries == 1 and outcome.retried

    def test_worker_death_exhausts_retries(self):
        (outcome,) = WorkerPool(jobs=1).run(
            [PoolTask("doomed", _die_always)]
        )
        assert outcome.status == "crashed"
        assert outcome.retries == 1  # one retry happened, then gave up
        assert outcome.error["kind"] == "worker_death"
        assert outcome.error["exitcode"] == -signal.SIGKILL

    def test_ordinary_exception_is_failed_not_crashed(self):
        (outcome,) = WorkerPool(jobs=1).run([PoolTask("raises", _boom)])
        assert outcome.status == "failed"
        assert outcome.error["type"] == "ValueError"
        assert "intentional" in outcome.error["message"]
        assert outcome.retries == 0  # exceptions are deterministic: no retry

    def test_hard_wall_clock_kill(self):
        pool = WorkerPool(jobs=1, hard_grace=0.2)
        (outcome,) = pool.run(
            [PoolTask("hog", _sleepy, args=(30.0,), budget=0.3)]
        )
        assert outcome.status == "budget"
        assert outcome.error["kind"] == "wall_clock_hard"
        assert outcome.wall_time < 10.0

    def test_dependencies_order_execution(self, tmp_path):
        marker = str(tmp_path)
        tasks = [
            PoolTask("a", _check_marker, args=(marker, "a", ())),
            PoolTask("b", _check_marker, args=(marker, "b", ("a",)), deps=("a",)),
            PoolTask("c", _check_marker, args=(marker, "c", ("a",)), deps=("a",)),
            PoolTask("d", _check_marker, args=(marker, "d", ("b", "c")), deps=("b", "c")),
        ]
        outcomes = WorkerPool(jobs=4).run(tasks)
        assert [o.status for o in outcomes] == ["ok"] * 4

    def test_dependency_cycle_is_an_error(self):
        tasks = [
            PoolTask("a", _echo, args=(1,), deps=("b",)),
            PoolTask("b", _echo, args=(2,), deps=("a",)),
        ]
        with pytest.raises(ValueError, match="dependency cycle"):
            WorkerPool(jobs=2).run(tasks)

    def test_unknown_dependency_is_an_error(self):
        with pytest.raises(ValueError, match="unknown"):
            WorkerPool(jobs=1).run(
                [PoolTask("a", _echo, args=(1,), deps=("ghost",))]
            )

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkerPool(jobs=1).run(
                [PoolTask("a", _echo, args=(1,)), PoolTask("a", _echo, args=(2,))]
            )


# -- persistent summary store ---------------------------------------------------


class TestPersistentSummaryStore:
    KEY = ("prog-fp", "proc", "au[P=,P1]", 0, None, None)

    def test_roundtrip(self, tmp_path):
        store = PersistentSummaryStore(str(tmp_path))
        assert store.get(self.KEY) is None  # miss
        payload = [("proc", {"entry": 1}, ["summary"])]
        store.put(self.KEY, payload)
        assert self.KEY in store
        assert len(store) == 1
        assert store.get(self.KEY) == payload
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["stores"] == 1 and stats["entries"] == 1

    def test_shared_between_instances(self, tmp_path):
        PersistentSummaryStore(str(tmp_path)).put(self.KEY, ["x"])
        other = PersistentSummaryStore(str(tmp_path))
        assert other.get(self.KEY) == ["x"]  # what a second worker sees

    def test_stale_fingerprint_self_invalidates(self, tmp_path):
        old = PersistentSummaryStore(str(tmp_path), fingerprint="old-schema")
        old.put(self.KEY, ["stale payload"])
        new = PersistentSummaryStore(str(tmp_path))  # real fingerprint
        assert new.get(self.KEY) is None
        assert new.stats()["stale_discards"] == 1
        assert len(new) == 0  # the stale entry was unlinked
        # ... and a fresh put under the new fingerprint hits again.
        new.put(self.KEY, ["fresh"])
        assert new.get(self.KEY) == ["fresh"]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = PersistentSummaryStore(str(tmp_path))
        store.put(self.KEY, ["ok"])
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{ torn json", encoding="utf-8")
        again = PersistentSummaryStore(str(tmp_path))
        assert again.get(self.KEY) is None
        assert again.stats()["disk_errors"] == 1

    def test_fingerprint_is_stable_within_a_process(self):
        assert schema_fingerprint() == schema_fingerprint()
        assert isinstance(schema_fingerprint(), str)

    def test_tmp_files_not_counted(self, tmp_path):
        store = PersistentSummaryStore(str(tmp_path))
        (tmp_path / ".tmp-abandoned.json").write_text("{}")
        store.put(self.KEY, ["x"])
        assert len(store) == 1


# -- shard planning -------------------------------------------------------------


class TestShardPlan:
    @pytest.fixture(scope="class")
    def analyzer(self):
        from repro.lang.benchlib import benchmark_program

        return Analyzer(benchmark_program())

    def test_every_proc_in_exactly_one_shard(self, analyzer):
        plan = plan_shards(analyzer.icfg)
        roots = plan.roots()
        assert sorted(roots) == sorted(set(roots))
        assert set(roots) == set(analyzer.icfg.call_graph())

    def test_callees_rank_below_callers(self, analyzer):
        plan = plan_shards(analyzer.icfg)
        rank = {s.shard_id: s.rank for s in plan}
        for shard in plan:
            for dep in shard.deps:
                assert rank[dep] < shard.rank

    def test_levels_partition_the_plan(self, analyzer):
        plan = plan_shards(analyzer.icfg)
        leveled = [s.shard_id for level in plan.levels() for s in level]
        assert sorted(leveled) == sorted(s.shard_id for s in plan)
        # Level 0 shards have no deps inside the plan.
        for shard in plan.levels()[0]:
            assert not shard.deps

    def test_subset_keeps_only_requested_roots(self, analyzer):
        plan = plan_shards(analyzer.icfg, ["quicksort", "qsplit"])
        assert sorted(plan.roots()) == ["qsplit", "quicksort"]
        # quicksort calls qsplit: its shard depends on qsplit's.
        by_root = {root: s for s in plan for root in s.roots}
        assert by_root["qsplit"].shard_id in by_root["quicksort"].deps

    def test_unknown_proc_rejected(self, analyzer):
        with pytest.raises(ValueError, match="unknown"):
            plan_shards(analyzer.icfg, ["nope"])


# -- batch determinism: parallel == sequential ----------------------------------


@pytest.mark.parametrize("path", _corpus_sources())
def test_corpus_parallel_equals_sequential(path):
    """jobs=4 batch summaries hash-identical to the inline baseline,
    for every root procedure of every corpus entry, in both domains."""
    from repro.fuzz.__main__ import load_corpus_entry

    source = load_corpus_entry(path).source
    domains = ("am", "au")
    sequential = Analyzer.from_source(source).analyze_batch(
        domains=domains, jobs=0
    )
    parallel = Analyzer.from_source(source).analyze_batch(
        domains=domains, jobs=JOBS
    )
    assert _sequential_hashes(parallel) == _sequential_hashes(sequential)


# Fast benchmark roots: covers the Figures 4-6 procedures (quicksort,
# qsplit) without the sorting-class AU runs that dominate wall time.
FIGURE_ROOTS = ["create", "addfst", "delfst", "init", "qsplit", "quicksort"]


def test_benchmark_parallel_equals_sequential_am():
    from repro.lang.benchlib import benchmark_program

    program = benchmark_program()
    sequential = Analyzer(program).analyze_batch(
        procs=FIGURE_ROOTS, domains=("am",), jobs=0
    )
    parallel = Analyzer(program).analyze_batch(
        procs=FIGURE_ROOTS, domains=("am",), jobs=JOBS
    )
    assert _sequential_hashes(parallel) == _sequential_hashes(sequential)


@pytest.mark.slow
def test_benchmark_parallel_equals_sequential_full():
    """Every Table 1 root in the AM domain (slow lane)."""
    from repro.lang.benchlib import TABLE1, benchmark_program

    program = benchmark_program()
    roots = [e.name for e in TABLE1]
    sequential = Analyzer(program).analyze_batch(
        procs=roots, domains=("am",), jobs=0
    )
    parallel = Analyzer(program).analyze_batch(
        procs=roots, domains=("am",), jobs=JOBS
    )
    assert _sequential_hashes(parallel) == _sequential_hashes(sequential)


def test_batch_matches_direct_analyze():
    """A batch outcome equals what a direct Analyzer.analyze call yields."""
    from repro.lang.benchlib import benchmark_program

    program = benchmark_program()
    report = Analyzer(program).analyze_batch(
        procs=["delfst"], domains=("am",), jobs=1
    )
    (outcome,) = report.outcomes
    assert outcome.status == "ok"
    result = Analyzer(program).analyze("delfst", domain="am")
    direct = [
        (graph_hash(entry.graph), heapset_hash(summary, result.domain))
        for entry, summary in result.summaries
    ]
    assert outcome.result.summary_hashes == direct


def test_batch_fault_injection_retries_to_correct_result(tmp_path, monkeypatch):
    """Kill a batch worker mid-analysis; the retry must still produce the
    sequential result."""
    import repro.parallel.batch as batch_mod

    sentinel = str(tmp_path / "analysis-died")
    real_run = batch_mod.run_analysis_request

    def sabotaged(request):
        if not os.path.exists(sentinel):
            with open(sentinel, "w") as fh:
                fh.write("died")
            os.kill(os.getpid(), signal.SIGKILL)
        return real_run(request)

    monkeypatch.setattr(batch_mod, "run_analysis_request", sabotaged)
    from repro.lang.benchlib import benchmark_program

    program = benchmark_program()
    report = Analyzer(program).analyze_batch(
        procs=["delfst"], domains=("am",), jobs=1
    )
    (outcome,) = report.outcomes
    assert outcome.status == "ok"
    assert outcome.retries == 1
    monkeypatch.undo()
    baseline = Analyzer(program).analyze_batch(
        procs=["delfst"], domains=("am",), jobs=0
    )
    assert _sequential_hashes(report) == _sequential_hashes(baseline)


def test_batch_budget_reports_partial(tmp_path):
    """An engine wall budget fires cooperatively: the outcome is a
    structured ``budget`` record, not a crash."""
    from repro.lang.benchlib import benchmark_program

    report = Analyzer(benchmark_program()).analyze_batch(
        procs=["mergesort"], domains=("au",), jobs=1, max_seconds=0.05
    )
    (outcome,) = report.outcomes
    assert outcome.status == "budget"
    assert outcome.error["kind"] == "wall_clock"
    assert report.counts()["budget"] == 1
    assert not report.ok


def test_batch_store_warm_rerun(tmp_path):
    """A second batch over the same store answers from disk."""
    from repro.lang.benchlib import benchmark_program

    store_dir = str(tmp_path / "store")
    program = benchmark_program()
    cold = Analyzer(program).analyze_batch(
        procs=["delfst", "addfst"], domains=("am",), jobs=1, store_dir=store_dir
    )
    assert cold.ok
    assert not any(o.result.stats.get("from_cache") for o in cold.outcomes)
    assert len(PersistentSummaryStore(store_dir)) >= 2
    warm = Analyzer(program).analyze_batch(
        procs=["delfst", "addfst"], domains=("am",), jobs=1, store_dir=store_dir
    )
    assert warm.ok
    assert all(o.result.stats.get("from_cache") for o in warm.outcomes)
    assert _sequential_hashes(warm) == _sequential_hashes(cold)


def test_batch_merged_trace(tmp_path):
    """Per-worker telemetry traces merge into one ordered run trace."""
    from repro.lang.benchlib import benchmark_program

    trace_dir = str(tmp_path / "traces")
    merged = str(tmp_path / "run.trace.jsonl")
    report = Analyzer(benchmark_program()).analyze_batch(
        procs=["delfst", "addfst"],
        domains=("am",),
        jobs=2,
        trace_dir=trace_dir,
        trace_path=merged,
    )
    assert report.ok
    assert report.trace_path == merged
    events = [json.loads(line) for line in open(merged)]
    assert events
    tasks = {e["task"] for e in events}
    assert tasks == {"delfst.am", "addfst.am"}
    assert [e["gseq"] for e in events] == list(range(1, len(events) + 1))
    assert all(e["ts"] <= e2["ts"] for e, e2 in zip(events, events[1:]))


# -- telemetry: wall vs CPU split, trace merging --------------------------------


def test_telemetry_splits_wall_and_cpu():
    from repro.engine.telemetry import Telemetry

    tel = Telemetry()
    with tel.phase("sleepy"):
        time.sleep(0.05)
    report = tel.report()
    assert report["time.sleepy"] >= 0.05
    # Sleeping burns wall time, not CPU.
    assert report["cpu.sleepy"] < report["time.sleepy"]


def test_merge_traces_orders_and_labels(tmp_path):
    a = tmp_path / "alpha.trace.jsonl"
    b = tmp_path / "beta.trace.jsonl"
    a.write_text(
        json.dumps({"ts": 2.0, "seq": 0, "kind": "x"})
        + "\n"
        + json.dumps({"ts": 4.0, "seq": 1, "kind": "y"})
        + "\n"
    )
    b.write_text(
        json.dumps({"ts": 1.0, "seq": 0, "kind": "z"})
        + "\n"
        + "{ torn line"  # a crashed worker's final partial write
    )
    out = tmp_path / "merged.jsonl"
    count = merge_traces([str(a), str(b)], str(out))
    events = [json.loads(line) for line in open(out)]
    assert count == len(events) == 3  # torn line skipped, not fatal
    assert [e["task"] for e in events] == ["beta", "alpha", "alpha"]
    assert [e["gseq"] for e in events] == [1, 2, 3]


# -- exact-LP memoization -------------------------------------------------------


def test_lp_memo_is_order_independent():
    from repro.numeric import simplex
    from repro.numeric.linexpr import Constraint, LinExpr

    simplex.clear_caches()
    x = LinExpr.var("x")
    y = LinExpr.var("y")
    cons = [
        Constraint.ge(x, 1),
        Constraint.le(x, 5),
        Constraint.ge(y, x),
    ]
    first = simplex.solve_lp(cons, x)
    before = simplex.cache_stats()
    # Same system, different constraint order: must hit, same optimum.
    second = simplex.solve_lp(list(reversed(cons)), x)
    after = simplex.cache_stats()
    assert after["solve_hits"] == before["solve_hits"] + 1
    assert after["solve_misses"] == before["solve_misses"]
    assert second.status == first.status and second.value == first.value


def test_lp_memo_counters_reach_engine_stats():
    from repro.lang.benchlib import benchmark_program

    result = Analyzer(benchmark_program()).analyze("delfst", domain="au")
    lp = result.stats["lp_cache"]
    assert set(lp) == {"solve_hits", "solve_misses", "solve_entries"}
    assert lp["solve_hits"] >= 0 and lp["solve_misses"] >= 0


# -- fuzz corpus saving under concurrency ---------------------------------------


def test_save_corpus_entry_race_free(tmp_path):
    from repro.fuzz.__main__ import save_corpus_entry
    from repro.fuzz.oracle import Finding

    finding = Finding(
        kind="gamma",
        domain="am",
        root="main",
        message="disagreement",
        source="proc main() {}",
        seed=7,
    )
    first = save_corpus_entry(tmp_path, finding)
    second = save_corpus_entry(tmp_path, finding)  # same stem: must not clobber
    assert first != second
    assert first.exists() and second.exists()
    assert second.name.endswith("_1.lisl")
    assert not list(tmp_path.glob(".tmp-*"))  # no temp litter
