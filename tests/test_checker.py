"""Tests of the two-tier checker (``repro.checker``).

Five layers:

- **Tier-A units**: each dataflow lint on a minimal trigger program,
  plus purity (linting never mutates the CFG it reads);
- **Tier-B semantics**: safe / unsafe / unknown verdicts on the
  canonical leak, guaranteed-null and input-dependent-null programs,
  budget degradation to ``unknown``;
- **corpus goldens**: every seeded defect in ``tests/corpus/buggy`` is
  flagged with exactly the recorded rule ids, lines and verdicts; the
  clean corpus and the examples are finding-free;
- **stability**: frozen rule-id inventory, byte-identical SARIF across
  runs (and against a committed golden), frontend errors as diagnostics
  with source lines;
- **service**: the daemon's ``check`` verb answers warm re-checks from
  its per-procedure cache and invalidates on line/declaration edits.
"""

import json
from pathlib import Path

import pytest

from repro.checker import (
    ALL_RULE_IDS,
    CheckOptions,
    SafetyOptions,
    check_safety,
    check_source,
    lint_cfg,
    sarif_dumps,
    to_sarif,
)
from repro.checker import findings as F
from repro.checker.__main__ import main as lint_main
from repro.checker.sarif import SARIF_SCHEMA, SARIF_VERSION
from repro.core.api import Analyzer
from repro.lang.cfg import OpAssignPtr

CORPUS = Path(__file__).parent / "corpus"
BUGGY = CORPUS / "buggy"
CLEAN = CORPUS / "clean"
EXAMPLES = Path(__file__).parent.parent / "examples"


def _lint(source: str, proc: str = "main", rules=None):
    analyzer = Analyzer.from_source(source)
    proc_lines = {p.name: p.line for p in analyzer.program.procedures}
    return lint_cfg(
        analyzer.icfg.cfg(proc), rules=rules, proc_line=proc_lines.get(proc, 0)
    )


def _rules(findings):
    return {f.rule_id for f in findings}


class TestTierALints:
    def test_use_before_init(self):
        found = _lint(
            "proc main(n: int) returns (s: int) {\n"
            "  local d: int;\n"
            "  s = d + n;\n"
            "}\n"
        )
        (f,) = [f for f in found if f.rule_id == F.RULE_USE_BEFORE_INIT]
        assert f.line == 3 and "'d'" in f.message

    def test_dead_store(self):
        found = _lint(
            "proc main(x: list) returns (r: list) {\n"
            "  local t: list;\n"
            "  t = new;\n"
            "  t = x;\n"
            "  r = t;\n"
            "}\n"
        )
        (f,) = [f for f in found if f.rule_id == F.RULE_DEAD_STORE]
        assert f.line == 3

    def test_lint_null_deref(self):
        found = _lint(
            "proc main(x: list) returns (r: list) {\n"
            "  local t: list;\n"
            "  t = NULL;\n"
            "  r = t->next;\n"
            "}\n"
        )
        (f,) = [f for f in found if f.rule_id == F.RULE_LINT_NULL_DEREF]
        assert f.line == 4

    def test_null_deref_not_reported_after_guard(self):
        found = _lint(
            "proc main(x: list) returns (r: list) {\n"
            "  if (x != NULL) {\n"
            "    r = x->next;\n"
            "  } else {\n"
            "    r = NULL;\n"
            "  }\n"
            "}\n"
        )
        assert F.RULE_LINT_NULL_DEREF not in _rules(found)

    def test_missing_return_and_unused_param(self):
        found = _lint(
            "proc main(x: list, d: int) returns (r: list) {\n"
            "  if (x == NULL) {\n"
            "    r = NULL;\n"
            "  }\n"
            "}\n"
        )
        assert F.RULE_MISSING_RETURN in _rules(found)
        (f,) = [f for f in found if f.rule_id == F.RULE_UNUSED_PARAM]
        assert "'d'" in f.message

    def test_unused_local(self):
        found = _lint(
            "proc main(x: list) returns (r: list) {\n"
            "  local t: list;\n"
            "  r = x;\n"
            "}\n"
        )
        (f,) = [f for f in found if f.rule_id == F.RULE_UNUSED_LOCAL]
        assert "'t'" in f.message

    def test_unreachable_on_orphan_node(self):
        # Structured source can't produce graph-unreachable nodes, so
        # graft one onto a parsed CFG by hand.
        analyzer = Analyzer.from_source(
            "proc main(x: list) returns (r: list) { r = x; }\n"
        )
        cfg = analyzer.icfg.cfg("main")
        orphan, dead_end = cfg.new_node(9), cfg.new_node(9)
        cfg.add_edge(orphan, dead_end, OpAssignPtr("r", "var", "x"), line=9)
        found = lint_cfg(cfg, rules=[F.RULE_UNREACHABLE])
        (f,) = found
        assert f.rule_id == F.RULE_UNREACHABLE and f.line == 9

    def test_clean_loop_has_no_lints(self):
        found = _lint(
            "proc main(x: list) returns (s: int) {\n"
            "  local c: list;\n"
            "  s = 0;\n"
            "  c = x;\n"
            "  while (c != NULL) {\n"
            "    s = s + c->data;\n"
            "    c = c->next;\n"
            "  }\n"
            "}\n"
        )
        assert found == []

    def test_lint_is_pure(self):
        analyzer = Analyzer.from_source(
            "proc main(x: list) returns (r: list) {\n"
            "  local t: list;\n"
            "  t = NULL;\n"
            "  r = t->next;\n"
            "}\n"
        )
        cfg = analyzer.icfg.cfg("main")
        before = (
            str(cfg),
            tuple(sorted(cfg.widen_points)),
            tuple(p.name for p in cfg.locals),
        )
        lint_cfg(cfg)
        lint_cfg(cfg)
        after = (
            str(cfg),
            tuple(sorted(cfg.widen_points)),
            tuple(p.name for p in cfg.locals),
        )
        assert before == after


LEAK = (BUGGY / "leak_push.lisl").read_text()
NULL_SURE = (BUGGY / "null_deref_guaranteed.lisl").read_text()
NULL_MAYBE = (BUGGY / "null_deref_input.lisl").read_text()
REVERSE = (CLEAN / "reverse.lisl").read_text()


class TestTierBSafety:
    def test_leak_unsafe(self):
        report = check_safety(Analyzer.from_source(LEAK))
        assert report.leak_verdict("main") == F.UNSAFE

    def test_guaranteed_null_deref_unsafe(self):
        report = check_safety(Analyzer.from_source(NULL_SURE))
        assert report.null_deref_verdict("main", 10) == F.UNSAFE

    def test_input_dependent_null_deref_unknown(self):
        report = check_safety(Analyzer.from_source(NULL_MAYBE))
        assert report.null_deref_verdict("main", 8) == F.UNKNOWN

    def test_reverse_all_safe(self):
        report = check_safety(Analyzer.from_source(REVERSE))
        assert report.proc_status == {"reverse": "ok"}
        assert report.sites and all(
            s.verdict == F.SAFE for s in report.sites
        )
        assert report.findings() == []

    def test_budget_degrades_to_unknown(self):
        report = check_safety(
            Analyzer.from_source(REVERSE), SafetyOptions(max_steps=1)
        )
        assert report.proc_status["reverse"].startswith("budget")
        assert all(s.verdict == F.UNKNOWN for s in report.sites)
        assert any(
            f.rule_id == F.RULE_CHECKER_INCOMPLETE for f in report.findings()
        )

    def test_safety_rule_filter(self):
        report = check_safety(
            Analyzer.from_source(LEAK),
            SafetyOptions(rules=[F.RULE_SAFETY_ACYCLIC]),
        )
        assert {s.rule_id for s in report.sites} == {F.RULE_SAFETY_ACYCLIC}
        with pytest.raises(ValueError):
            check_safety(
                Analyzer.from_source(LEAK), SafetyOptions(rules=["nope"])
            )


def _finding_tuples(report):
    return [
        {
            "ruleId": f.rule_id,
            "verdict": f.verdict,
            "procedure": f.procedure,
            "line": f.line,
        }
        for f in report.findings
    ]


@pytest.mark.parametrize(
    "path", sorted(BUGGY.glob("*.lisl")), ids=lambda p: p.stem
)
def test_buggy_corpus_matches_golden(path):
    report = check_source(path.read_text(), CheckOptions(), path=str(path))
    golden = json.loads(path.with_suffix(".expected.json").read_text())
    assert _finding_tuples(report) == golden["findings"]
    assert report.findings  # every buggy entry is flagged


@pytest.mark.parametrize(
    "path",
    sorted(CLEAN.glob("*.lisl")) + sorted(EXAMPLES.glob("*.lisl")),
    ids=lambda p: p.stem,
)
def test_clean_corpus_and_examples_finding_free(path):
    report = check_source(path.read_text(), CheckOptions(), path=str(path))
    assert report.findings == []
    assert report.ok


class TestStability:
    # The frozen rule-id inventory moved to tests/test_rule_inventory.py,
    # which freezes the service/gateway tier's rule ids alongside these.

    def test_sarif_is_deterministic_and_well_formed(self):
        uri = "tests/corpus/buggy/leak_push.lisl"
        report1 = check_source(LEAK, CheckOptions(), path=uri)
        report2 = check_source(LEAK, CheckOptions(), path=uri)
        dump1 = sarif_dumps({uri: report1.findings})
        dump2 = sarif_dumps({uri: report2.findings})
        assert dump1 == dump2  # byte-identical across runs
        log = json.loads(dump1)
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        (run,) = log["runs"]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rules == sorted(ALL_RULE_IDS)
        (result,) = run["results"]
        assert result["ruleId"] == "safety.leak"
        assert result["level"] == "error"
        assert (
            result["locations"][0]["physicalLocation"]["artifactLocation"][
                "uri"
            ]
            == uri
        )

    def test_sarif_matches_committed_golden(self):
        uri = "tests/corpus/buggy/leak_push.lisl"
        report = check_source(LEAK, CheckOptions(), path=uri)
        golden = (BUGGY / "leak_push.sarif.golden").read_text()
        assert sarif_dumps({uri: report.findings}) == golden

    def test_sarif_safe_results_level_none(self):
        report = check_source(
            REVERSE, CheckOptions(include_safe=True), path="r.lisl"
        )
        log = json.loads(sarif_dumps({"r.lisl": report.findings}))
        levels = {r["level"] for r in log["runs"][0]["results"]}
        assert levels == {"none"}

    def test_type_error_is_a_finding_with_line(self):
        report = check_source(
            "proc main(x: list) returns (r: list) {\n"
            "  local x: list;\n"
            "  r = x;\n"
            "}\n"
        )
        (f,) = report.findings
        assert f.rule_id == "frontend.type-error"
        assert f.verdict == "error"
        assert f.line == 2
        assert not report.ok

    def test_parse_error_is_a_finding(self):
        report = check_source("proc main( {")
        (f,) = report.findings
        assert f.rule_id == "frontend.parse-error"
        assert f.line is not None


class TestCheckerCLI:
    def test_exit_codes(self, capsys):
        assert lint_main([str(CLEAN / "reverse.lisl")]) == 0
        assert lint_main([str(BUGGY / "leak_push.lisl")]) == 1
        assert lint_main([str(BUGGY)]) == 1
        capsys.readouterr()

    def test_fail_on_unsafe_ignores_lints(self, capsys):
        assert (
            lint_main(
                [str(BUGGY / "use_before_init.lisl"), "--fail-on", "unsafe"]
            )
            == 0
        )
        assert (
            lint_main([str(BUGGY / "leak_push.lisl"), "--fail-on", "unsafe"])
            == 1
        )
        capsys.readouterr()

    def test_rules_filter_and_unknown_rule(self, capsys):
        assert (
            lint_main(
                [str(BUGGY / "leak_push.lisl"), "--rules", "lint.dead-store"]
            )
            == 0
        )
        with pytest.raises(SystemExit):
            lint_main([str(BUGGY / "leak_push.lisl"), "--rules", "bogus"])
        capsys.readouterr()

    def test_sarif_and_json_outputs(self, tmp_path, capsys):
        sarif_path = tmp_path / "out.sarif"
        code = lint_main(
            [str(BUGGY / "leak_push.lisl"), "--sarif", str(sarif_path),
             "--json"]
        )
        assert code == 1
        envelope = json.loads(capsys.readouterr().out)
        uri = str(BUGGY / "leak_push.lisl").replace("\\", "/")
        records = envelope["files"][uri]["runs"][0]["results"]
        assert [r["ruleId"] for r in records] == ["safety.leak"]
        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"

    def test_missing_file_is_usage_error(self, capsys):
        assert lint_main([str(BUGGY / "does-not-exist.d")]) == 2
        capsys.readouterr()


SUBSET = ("create", "addfst", "delfst", "init", "max", "concat")


def test_table1_subset_zero_unsafe():
    """Representative Table 1 benchmarks prove memory-safe (fast lane)."""
    from repro.lang.benchlib import benchmark_program

    report = check_safety(
        Analyzer(benchmark_program()), SafetyOptions(procs=SUBSET)
    )
    assert set(report.proc_status.values()) == {"ok"}
    assert all(s.verdict != F.UNSAFE for s in report.sites)


@pytest.mark.slow
def test_table1_full_zero_unsafe():
    """No Table 1 benchmark gets an ``unsafe`` verdict (acceptance)."""
    from repro.lang.benchlib import benchmark_program

    report = check_safety(Analyzer(benchmark_program()))
    unsafe = [s for s in report.sites if s.verdict == F.UNSAFE]
    assert unsafe == []


@pytest.fixture
def check_server(tmp_path):
    from repro.service.server import AnalysisServer, ServerConfig

    srv = AnalysisServer(
        ServerConfig(port=0, jobs=0, store_dir=str(tmp_path / "store"))
    )
    srv.start()
    yield srv
    if not srv.stopped.is_set():
        srv.stop()


def _client(srv):
    from repro.service.client import ServiceClient

    _, (host, port) = srv.address
    return ServiceClient.connect_tcp(host, port)


class TestServiceCheckVerb:
    def test_cold_warm_edit_cycle(self, check_server):
        with _client(check_server) as client:
            cold = client.check(LEAK, program_id="p")
            assert cold["ok"] and not cold["result"]["ok"]
            assert cold["result"]["checked"] == ["main"]
            records = cold["result"]["diagnostics"]["runs"][0]["results"]
            assert [r["ruleId"] for r in records] == ["safety.leak"]

            warm = client.check(LEAK, program_id="p")
            assert warm["result"]["checked"] == []
            assert warm["result"]["reused"] == ["main"]
            assert warm["telemetry"]["isolation"] == "warm"
            # identical findings, served from the cache
            assert (
                warm["result"]["diagnostics"]["runs"][0]["results"] == records
            )

            fixed = LEAK.replace("r = x;", "r = n;")
            edit = client.check(fixed, program_id="p")
            assert edit["result"]["checked"] == ["main"]
            assert edit["result"]["ok"]

    def test_declaration_edit_invalidates(self, check_server):
        src = "proc id(x: list) returns (r: list) {\n  r = x;\n}\n"
        edited = (
            "proc id(x: list) returns (r: list) {\n  local u: list;\n"
            "  r = x;\n}\n"
        )
        with _client(check_server) as client:
            assert client.check(src, program_id="p")["result"]["ok"]
            response = client.check(edited, program_id="p")
            assert response["result"]["checked"] == ["id"]
            records = response["result"]["diagnostics"]["runs"][0]["results"]
            assert [r["ruleId"] for r in records] == ["lint.unused-local"]

    def test_line_shift_invalidates(self, check_server):
        src = "proc id(x: list) returns (r: list) {\n  r = x;\n}\n"
        with _client(check_server) as client:
            client.check(src, program_id="p")
            shifted = client.check("\n\n" + src, program_id="p")
            assert shifted["result"]["checked"] == ["id"]

    def test_unknown_proc_and_tier_rejected(self, check_server):
        with _client(check_server) as client:
            bad = client.check(LEAK, procs=["nope"], program_id="p")
            assert not bad["ok"]
            assert bad["error"]["kind"] == "bad_request"
            worse = client.check(LEAK, tier="turbo", program_id="p")
            assert not worse["ok"]

    def test_per_rule_telemetry(self, check_server):
        with _client(check_server) as client:
            client.check(LEAK, program_id="p")
            counters = client.status()["result"]["telemetry"]
            assert counters["checker.rule.safety.leak"] == 1
            assert counters["check.procs_checked"] == 1

    def test_flush_drops_check_cache(self, check_server):
        with _client(check_server) as client:
            client.check(LEAK, program_id="p")
            assert client.flush("p")["result"]["dropped"] >= 1
            cold_again = client.check(LEAK, program_id="p")
            assert cold_again["result"]["checked"] == ["main"]
