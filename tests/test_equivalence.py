"""Tests for the equivalence-checking application (paper §6.4)."""

from fractions import Fraction

import pytest

from repro.core.equivalence import EquivalenceResult, check_formula_c
from repro.core.combine import sigma_m_from_universal, sigma_m_strengthen
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron

AM = MultisetDomain()


def v(name):
    return LinExpr.var(name)


def sorted_value(domain, words):
    value = domain.top()
    for w in words:
        value = domain.meet_clause(
            value,
            GuardInstance("ORD2", (w,)),
            Polyhedron.of(
                Constraint.le(v(T.elem(w, "y1")), v(T.elem(w, "y2")))
            ),
        )
        value = domain.meet_clause(
            value,
            GuardInstance("ALL1", (w,)),
            Polyhedron.of(Constraint.le(v(T.hd(w)), v(T.elem(w, "y1")))),
        )
    return value


def ms_equal(a, b):
    return MultisetValue(
        [
            {
                T.mhd(a): Fraction(1),
                T.mtl(a): Fraction(1),
                T.mhd(b): Fraction(-1),
                T.mtl(b): Fraction(-1),
            }
        ]
    )


class TestFormulaC:
    def test_valid(self):
        assert check_formula_c()

    def test_head_equality_step(self):
        domain = UniversalDomain(pattern_set("P=", "P1", "P2"))
        value = sorted_value(domain, ["o1", "o2"])
        strengthened = sigma_m_strengthen(domain, value, ms_equal("o1", "o2"))
        assert strengthened.E.entails(
            Constraint.eq(v(T.hd("o1")), v(T.hd("o2")))
        )

    def test_tail_premise_reestablished(self):
        domain = UniversalDomain(pattern_set("P=", "P1", "P2"))
        value = sorted_value(domain, ["o1", "o2"])
        ms = ms_equal("o1", "o2")
        strengthened = sigma_m_strengthen(domain, value, ms)
        exported = sigma_m_from_universal(domain, strengthened, ms)
        assert AM.entails_row(
            exported, {T.mtl("o1"): Fraction(1), T.mtl("o2"): Fraction(-1)}
        )

    def test_unsorted_does_not_prove_head_equality(self):
        """Sanity: the multiset argument alone must NOT equate heads."""
        domain = UniversalDomain(pattern_set("P=", "P1", "P2"))
        value = domain.top()  # no sortedness
        strengthened = sigma_m_strengthen(domain, value, ms_equal("o1", "o2"))
        assert not strengthened.E.entails(
            Constraint.eq(v(T.hd("o1")), v(T.hd("o2")))
        )

    def test_one_sided_sortedness_insufficient(self):
        domain = UniversalDomain(pattern_set("P=", "P1", "P2"))
        value = sorted_value(domain, ["o1"])  # o2 unconstrained
        strengthened = sigma_m_strengthen(domain, value, ms_equal("o1", "o2"))
        assert not strengthened.E.entails(
            Constraint.eq(v(T.hd("o1")), v(T.hd("o2")))
        )


class TestResultType:
    def test_result_dataclass(self):
        r = EquivalenceResult("a", "b", True, "why")
        assert r.equivalent and r.detail == "why"
