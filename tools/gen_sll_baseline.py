"""Regenerate the prev-free summary-hash baseline.

The DLL PR promises bit-identical summaries for every program that never
touches ``prev``.  This script records canonical (graph_hash,
heapset_hash) pairs for the Table 1 benchmarks and every checked-in
corpus entry into ``tests/baseline_summary_hashes.json``; the identity
gate in ``tests/test_dll.py`` regenerates the same hashes and compares.

The committed artifact was produced from the pre-DLL tree, so the gate
proves the DLL wiring is invisible to SLL programs.  Rerun only when an
*intentional* representation change lands:

    PYTHONPATH=src python tools/gen_sll_baseline.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.api import Analyzer  # noqa: E402
from repro.engine.canon import graph_hash, heapset_hash  # noqa: E402
from repro.fuzz.__main__ import load_corpus_entry  # noqa: E402
from repro.lang.benchlib import TABLE1, benchmark_program  # noqa: E402

OUT = ROOT / "tests" / "baseline_summary_hashes.json"

# Every Table 1 benchmark in AM; AU only where the fixpoint is cheap
# enough for a tier-1 test (the sort/fold AU rows run for minutes).
AM_BENCHMARKS = [e.name for e in TABLE1]
AU_BENCHMARKS = ["create", "addfst", "delfst", "init", "mapadd"]

# Corpus rows whose AU fixpoint alone takes >1min; AM still covers them.
SLOW_AU_CORPUS = {"nested_sweep.lisl"}


def summary_hashes(analyzer: Analyzer, proc: str, domain: str):
    result = analyzer.analyze(proc, domain=domain, max_steps=400_000)
    return sorted(
        [graph_hash(entry.graph), heapset_hash(summary, result.domain)]
        for entry, summary in result.summaries
    )


def corpus_entries():
    corpus = ROOT / "tests" / "corpus"
    for path in sorted(corpus.rglob("*.lisl")):
        yield path.relative_to(corpus).as_posix(), path


def build_baseline():
    baseline = {"benchmarks": {}, "corpus": {}}
    analyzer = Analyzer(benchmark_program())
    for name in AM_BENCHMARKS:
        baseline["benchmarks"][f"{name}/am"] = summary_hashes(analyzer, name, "am")
    for name in AU_BENCHMARKS:
        baseline["benchmarks"][f"{name}/au"] = summary_hashes(analyzer, name, "au")
    for rel, path in corpus_entries():
        source = path.read_text()
        if "prev" in source:
            continue  # DLL corpus entries are outside the SLL identity gate
        if "// root:" in source:
            # Fuzz corpus entry: analyze its designated root in its domain.
            entry = load_corpus_entry(path)
            roots = [entry.root]
            domains = [entry.domain or "au"]
        else:
            # Checker/termination corpus: every proc, both domains.
            roots = None
            domains = ["am", "au"]
            if path.name in SLOW_AU_CORPUS:
                domains = ["am"]
        an = Analyzer.from_source(source)
        procs = (
            roots
            if roots is not None
            else sorted(p.name for p in an.program.procedures)
        )
        for domain in domains:
            for proc in procs:
                baseline["corpus"][f"{rel}/{proc}/{domain}"] = summary_hashes(
                    an, proc, domain
                )
    return baseline


def main():
    baseline = build_baseline()
    OUT.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")
    n = len(baseline["benchmarks"]) + len(baseline["corpus"])
    print(f"wrote {OUT} ({n} rows)")


if __name__ == "__main__":
    main()
